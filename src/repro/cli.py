"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``chase``      materialize a chase prefix of a theory over an instance
``rewrite``    compute the UCQ rewriting of a query (Theorem 1)
``answer``     certain answers, by rewriting with chase fallback
``classify``   syntactic class membership report (Section 1's catalogue)
``termination`` Core-Termination probe (Definitions 18-24)
``figure1``    render the doubling triangle of Figure 1
``bench-guard`` run the guard benchmarks and compare against a baseline
``serve``      run the OMQA HTTP service (:mod:`repro.service`)
``loadgen``    drive concurrent mixed traffic against the service

Theories and instances are read from files (or inline with ``-e``) in the
syntax of :mod:`repro.logic.parser`.  Every command takes ``--json`` for a
machine-readable document on stdout; the engine-backed commands
(``chase``/``rewrite``/``answer``) additionally take ``--stats`` to print
telemetry (per-round counters, search effort, phase timings) in text mode.

``chase`` and ``answer`` take ``--backend`` with any name from
:data:`repro.storage.BACKEND_NAMES`, resolved through the same
:func:`repro.storage.resolve_backend` registry as the library API:
``columnar`` runs the hash-join kernel over interned term ids, and
``sqlite --db PATH`` runs against the persistent fact store
(:mod:`repro.storage`) — the chase materializes into the database
(``--resume`` continues a budget-stopped run from disk) and ``answer``
evaluates the compiled UCQ rewriting inside SQLite's join engine.

Interruption (see ``docs/robustness.md``): ``chase`` and ``answer``
install a cooperative SIGINT handler — the first Ctrl-C cancels at the
next round boundary (leaving resumable state; exit code 130), a second
Ctrl-C aborts immediately.  ``--deadline SECONDS`` bounds wall-clock the
same way, through :attr:`repro.chase.ChaseBudget.deadline_s`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import signal
import sys
from pathlib import Path

from .chase import (
    CancellationToken,
    ChaseBudget,
    ChaseBudgetExceeded,
    ChaseCancelled,
    chase,
    core_termination,
)
from .chase.engine import DEFAULT_CHASE_BACKEND
from .classes import classify
from .logic import parse_instance, parse_query, parse_theory
from .rewriting import OMQASession, RewritingBudget, rewrite
from .storage.base import BACKEND_NAMES, resolve_backend


def _read(value: str, inline: bool) -> str:
    if inline:
        return value
    return Path(value).read_text(encoding="utf8")


def _add_common(parser: argparse.ArgumentParser, stats: bool = False) -> None:
    parser.add_argument(
        "-e",
        "--inline",
        action="store_true",
        help="treat THEORY/INSTANCE/QUERY arguments as literal text, not paths",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON document (including telemetry) instead of text",
    )
    if stats:
        parser.add_argument(
            "--stats",
            action="store_true",
            help="print engine telemetry (counters, per-round records, timings)",
        )


def _emit_json(document: dict) -> None:
    print(json.dumps(document, indent=2, sort_keys=True))


class _SigintCancel:
    """Cooperative Ctrl-C for long engine runs.

    The first SIGINT fires the :class:`~repro.chase.CancellationToken`
    (the engine stops at its next check, abandoning only the unfinished
    round — state stays resumable) and tells the user so; a second
    SIGINT restores Python's default handler behaviour and aborts hard.
    Outside the main thread ``signal.signal`` is unavailable; the scope
    then degrades to a plain token nobody fires.
    """

    def __init__(self) -> None:
        self.token = CancellationToken()
        self._previous = None
        self._installed = False

    def _handle(self, signum, frame) -> None:
        if self.token.cancelled:  # second Ctrl-C: abort now
            signal.signal(signal.SIGINT, signal.default_int_handler)
            raise KeyboardInterrupt
        self.token.cancel()
        print(
            "interrupted: stopping at the next safe point; state stays "
            "resumable (Ctrl-C again to abort hard)",
            file=sys.stderr,
        )

    def __enter__(self) -> CancellationToken:
        try:
            self._previous = signal.signal(signal.SIGINT, self._handle)
            self._installed = True
        except ValueError:  # not the main thread
            pass
        return self.token

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)


def _cancelled_exit(args: argparse.Namespace) -> int:
    """Report a SIGINT-cancelled run: resume hint, then POSIX 128+2."""
    if getattr(args, "db", None):
        print(
            f"cancelled; rerun with --resume --db {args.db} to continue "
            "from the last complete round",
            file=sys.stderr,
        )
    else:
        print("cancelled", file=sys.stderr)
    return 130


def _print_stats(stats: dict) -> None:
    """Human-readable telemetry: counters, phases, then per-round lines."""
    counters = " ".join(f"{name}={value}" for name, value in stats["counters"].items())
    print(f"# stats: {counters}")
    for name, seconds in stats["phases"].items():
        print(f"# phase {name}: {seconds:.6f}s")
    for entry in stats["rounds"]:
        cells = " ".join(f"{key}={value}" for key, value in entry.items())
        print(f"# round {cells}")


def _guard_checkpoint_target(store, theory) -> None:
    """Refuse to checkpoint into a database holding unrelated state.

    Mirrors :func:`~repro.storage.chasestore.chase_into_store`'s own
    guards for the in-memory fallback path: a db holding store-chase
    state, a checkpoint of a different theory, or facts with no
    checkpoint at all must not be silently merged into.
    """
    from .logic.serialize import dump_theory
    from .storage import StoreChaseError

    if store.get_meta("storechase.schema") is not None:
        raise StoreChaseError(
            "db holds store-chase state; refusing to overlay an in-memory "
            "checkpoint (use a fresh --db, or --resume to continue it)"
        )
    persisted = store.get_meta("checkpoint.theory")
    if persisted is None:
        if len(store):
            raise StoreChaseError(
                "db holds facts but no checkpoint state; refusing to mix "
                "(use a fresh --db)"
            )
    elif persisted != dump_theory(theory):
        raise StoreChaseError(
            "db holds a checkpoint of a different theory; refusing to mix"
        )


def _cmd_chase_sqlite(
    args: argparse.Namespace, theory, budget: ChaseBudget, cancel=None
) -> int:
    """``chase --backend sqlite``: materialize into (or resume from) a db.

    Theories the store chase supports run entirely inside SQLite; rules
    with universal head variables run in the in-memory engine with the
    result persisted as a checkpoint.  The split is decided upfront from
    the theory's syntax, so a store-state refusal (mismatched theory,
    already-populated database) is always reported, never silently
    papered over by the fallback.
    """
    from .storage import (
        CheckpointError,
        StoreChaseError,
        chase_into_store,
        open_checkpoint_store,
        resume_from_checkpoint,
        resume_store_chase,
        save_checkpoint,
    )

    needs_memory_fallback = any(
        rule.universal_head_variables() for rule in theory
    )
    try:
        store_handle = open_checkpoint_store(args.db if args.db else ":memory:")
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    with store_handle as store:
        try:
            if args.resume:
                if store.get_meta("storechase.schema") is not None:
                    result = resume_store_chase(
                        store, theory=theory, budget=budget, cancel=cancel
                    )
                    atom_count = result.atom_count
                    rounds_run, terminated = result.rounds_run, result.terminated
                    stats = result.stats.as_dict()
                else:
                    extended = resume_from_checkpoint(
                        store, extra_rounds=args.rounds, budget=budget, theory=theory
                    )
                    atom_count = len(extended.instance)
                    rounds_run, terminated = extended.rounds_run, extended.terminated
                    stats = extended.stats.as_dict()
            elif needs_memory_fallback:
                instance = parse_instance(_read(args.instance, args.inline))
                _guard_checkpoint_target(store, theory)
                mem_result = chase(theory, instance, budget=budget, cancel=cancel)
                save_checkpoint(mem_result, store)
                atom_count = len(mem_result.instance)
                rounds_run = mem_result.rounds_run
                terminated = mem_result.terminated
                stats = mem_result.stats.as_dict()
            else:
                instance = parse_instance(_read(args.instance, args.inline))
                result = chase_into_store(
                    theory, instance, store, budget=budget, cancel=cancel
                )
                atom_count = result.atom_count
                rounds_run, terminated = result.rounds_run, result.terminated
                stats = result.stats.as_dict()
        except (StoreChaseError, CheckpointError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        digest = store.digest()
        atoms = sorted(repr(item) for item in store)
    if args.json:
        _emit_json(
            {
                "command": "chase",
                "backend": "sqlite",
                "db": args.db or ":memory:",
                "atom_count": atom_count,
                "rounds_run": rounds_run,
                "terminated": terminated,
                "digest": digest,
                "atoms": atoms,
                "stats": stats,
            }
        )
        return 0
    status = "fixpoint" if terminated else f"truncated at {rounds_run} rounds"
    print(f"# {atom_count} atoms ({status}) in sqlite db, digest {digest}")
    if args.stats:
        _print_stats(stats)
    for item in atoms:
        print(item)
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    if args.instance is None and not getattr(args, "resume", False):
        print("error: INSTANCE is required unless --resume", file=sys.stderr)
        return 2
    if getattr(args, "resume", False) and args.backend != "sqlite":
        print("error: --resume requires --backend sqlite", file=sys.stderr)
        return 2
    if getattr(args, "resume", False) and not args.db:
        print(
            "error: --resume requires --db (a fresh in-memory store holds "
            "no resumable state)",
            file=sys.stderr,
        )
        return 2
    try:
        resolved = resolve_backend(args.backend, args.db)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    budget = ChaseBudget(
        max_rounds=args.rounds,
        max_atoms=args.max_atoms,
        deadline_s=args.deadline,
    )
    if resolved.name == "sqlite":
        with _SigintCancel() as token:
            code = _cmd_chase_sqlite(args, theory, budget, cancel=token)
        if token.cancelled and code == 0:
            return _cancelled_exit(args)
        return code
    instance = parse_instance(_read(args.instance, args.inline))
    with _SigintCancel() as token:
        result = chase(
            theory,
            instance,
            budget=budget,
            workers=args.workers,
            backend=resolved.name,
            cancel=token,
        )
    stats = result.stats.as_dict()
    if args.json:
        _emit_json(
            {
                "command": "chase",
                "backend": resolved.name,
                "atom_count": len(result.instance),
                "rounds_run": result.rounds_run,
                "terminated": result.terminated,
                "atoms": sorted(repr(item) for item in result.instance),
                "stats": stats,
            }
        )
        return _cancelled_exit(args) if token.cancelled else 0
    status = "fixpoint" if result.terminated else f"truncated at {result.rounds_run} rounds"
    print(f"# {len(result.instance)} atoms ({status})")
    if args.stats:
        _print_stats(stats)
    for item in sorted(result.instance, key=repr):
        print(item)
    return _cancelled_exit(args) if token.cancelled else 0


def _cmd_update(args: argparse.Namespace) -> int:
    """``repro update``: maintain a chased fixpoint under base changes.

    Memory/columnar: chase INSTANCE to a fixpoint, then apply
    ``--add``/``--retract`` through
    :func:`repro.incremental.incremental_update` (``--verify``
    cross-checks the maintained digest against a from-scratch chase).
    SQLite: maintain the store-chase fixpoint persisted at ``--db`` in
    place via :func:`repro.storage.update_store_chase`.
    """
    from .incremental import incremental_update
    from .storage.base import instance_digest

    try:
        resolved = resolve_backend(args.backend, args.db)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.add and not args.retract:
        print("error: nothing to do (pass --add and/or --retract)", file=sys.stderr)
        return 2
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    added = (
        parse_instance(_read(args.add, args.inline)).atoms()
        if args.add
        else frozenset()
    )
    retracted = (
        parse_instance(_read(args.retract, args.inline)).atoms()
        if args.retract
        else frozenset()
    )
    budget = ChaseBudget(max_rounds=args.rounds, max_atoms=args.max_atoms)

    if resolved.name == "sqlite":
        if not args.db:
            print(
                "error: --backend sqlite needs --db (a fresh in-memory store "
                "holds no fixpoint to maintain)",
                file=sys.stderr,
            )
            return 2
        from .storage import SQLiteStore, StoreChaseError, update_store_chase

        with _SigintCancel() as token:
            with SQLiteStore(args.db) as store:
                try:
                    result = update_store_chase(
                        store,
                        theory,
                        add=added,
                        retract=retracted,
                        budget=budget,
                        cancel=token,
                    )
                except (StoreChaseError, ValueError) as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
                digest = store.digest()
                atom_count = result.atom_count
                terminated = result.terminated
                stats = result.stats.as_dict()
        if token.cancelled:
            return _cancelled_exit(args)
        if args.json:
            _emit_json(
                {
                    "command": "update",
                    "backend": "sqlite",
                    "db": args.db,
                    "atom_count": atom_count,
                    "terminated": terminated,
                    "digest": digest,
                    "stats": stats,
                }
            )
            return 0 if terminated else 1
        status = "fixpoint" if terminated else "truncated"
        print(f"# {atom_count} atoms ({status}) in sqlite db, digest {digest}")
        if args.stats:
            _print_stats(stats)
        return 0 if terminated else 1

    if args.instance is None:
        print(
            "error: INSTANCE is required for --backend memory/columnar",
            file=sys.stderr,
        )
        return 2
    instance = parse_instance(_read(args.instance, args.inline))
    with _SigintCancel() as token:
        full = chase(
            theory, instance, budget=budget, backend=resolved.name, cancel=token
        )
        if not full.terminated:
            print(
                "error: the chase did not reach a fixpoint within the budget; "
                "nothing to maintain (raise --rounds/--max-atoms)",
                file=sys.stderr,
            )
            return 2
        try:
            outcome = incremental_update(
                full,
                add=added,
                retract=retracted,
                budget=budget,
                backend=resolved.name,
                cancel=token,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if token.cancelled:
        return _cancelled_exit(args)
    result = outcome.result
    digest = instance_digest(result.instance)
    verified = None
    if args.verify:
        scratch = chase(
            theory, result.base, budget=budget, backend=resolved.name
        )
        verified = (
            scratch.terminated
            and instance_digest(scratch.instance) == digest
        )
    stats = result.stats.as_dict()
    if args.json:
        _emit_json(
            {
                "command": "update",
                "backend": resolved.name,
                "atom_count": len(result.instance),
                "added": len(outcome.added),
                "retracted": len(outcome.retracted),
                "overdeleted": outcome.overdeleted,
                "rederived": outcome.rederived,
                "rounds_run": outcome.rounds_run,
                "terminated": result.terminated,
                "digest": digest,
                "verified": verified,
                "stats": stats,
            }
        )
        return 1 if verified is False else (0 if result.terminated else 1)
    status = "fixpoint" if result.terminated else "truncated"
    print(
        f"# {len(result.instance)} atoms ({status}), digest {digest}; "
        f"+{len(outcome.added)}/-{len(outcome.retracted)} base facts, "
        f"{outcome.overdeleted} over-deleted, {outcome.rederived} re-derived, "
        f"{outcome.rounds_run} maintenance rounds"
    )
    if verified is not None:
        print(f"# verify: {'digest matches from-scratch chase' if verified else 'MISMATCH'}")
    if args.stats:
        _print_stats(stats)
    return 1 if verified is False else (0 if result.terminated else 1)


def _cmd_rewrite(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    query = parse_query(_read(args.query, args.inline))
    budget = RewritingBudget(
        max_kept=args.max_kept,
        max_steps=args.max_steps,
        workers=args.workers,
    )
    result = rewrite(theory, query, budget)
    stats = result.stats.as_dict()
    if args.json:
        _emit_json(
            {
                "command": "rewrite",
                "complete": result.complete,
                "always_true": result.always_true,
                "disjunct_count": len(result.ucq),
                "max_disjunct_size": result.max_disjunct_size(),
                "disjuncts": [repr(disjunct) for disjunct in result.ucq],
                "stats": stats,
            }
        )
        return 0 if result.complete else 2
    print(f"# complete: {result.complete}; {len(result.ucq)} disjuncts; "
          f"max size {result.max_disjunct_size()}")
    if args.stats:
        _print_stats(stats)
    for disjunct in result.ucq:
        print(disjunct)
    return 0 if result.complete else 2


def _cmd_answer(args: argparse.Namespace) -> int:
    import sqlite3

    try:
        resolved = resolve_backend(args.backend, args.db)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    instance = parse_instance(_read(args.instance, args.inline))
    query = parse_query(_read(args.query, args.inline))
    chase_budget = None
    if args.deadline is not None:
        chase_budget = ChaseBudget(
            max_rounds=100, max_atoms=500_000, deadline_s=args.deadline
        )
    with _SigintCancel() as token:
        session = OMQASession(
            theory,
            chase_budget=chase_budget,
            workers=args.workers,
            db_path=resolved.path,
            cancel=token,
        )
        prepared = session.prepare(query)
        if resolved.name == "columnar":
            strategy = "columnar"
        elif resolved.name == "sqlite" and prepared.complete:
            strategy = "sql"
        elif prepared.complete:
            strategy = "rewrite"
        else:
            strategy = "materialize"
        try:
            answers = session.answer(query, instance, strategy=strategy)
        except ChaseCancelled:
            print(
                "cancelled before the materialization reached a fixpoint; "
                "no sound answers to report",
                file=sys.stderr,
            )
            return 130
        except ChaseBudgetExceeded as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except sqlite3.DatabaseError as error:
            print(
                f"error: --db {args.db!r} is not a readable SQLite "
                f"database: {error}",
                file=sys.stderr,
            )
            return 2
    stats = session.stats.as_dict()
    if args.backend == "sqlite":
        session.close()
    if args.json:
        _emit_json(
            {
                "command": "answer",
                "answer_count": len(answers),
                "answers": sorted(
                    [repr(term) for term in answer] for answer in answers
                ),
                "backend": args.backend,
                "strategy": strategy,
                "cache_info": session.cache_info(),
                "stats": stats,
            }
        )
        return 0
    print(f"# {len(answers)} certain answers (via {strategy})")
    if args.stats:
        _print_stats(stats)
    for answer in sorted(answers, key=repr):
        print(answer)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name=args.name)
    report = classify(theory)
    if args.json:
        document = dataclasses.asdict(report)
        document["known_bdd_by_syntax"] = report.known_bdd_by_syntax()
        _emit_json({"command": "classify", **document})
        return 0
    print(*report.lines(), sep="\n")
    return 0


def _cmd_termination(args: argparse.Namespace) -> int:
    theory = parse_theory(_read(args.theory, args.inline), name="cli")
    instance = parse_instance(_read(args.instance, args.inline))
    witness = core_termination(theory, instance, max_depth=args.depth)
    if args.json:
        _emit_json(
            {
                "command": "termination",
                "bound": None if witness is None else witness.bound,
                "model": (
                    None
                    if witness is None
                    else sorted(repr(item) for item in witness.model)
                ),
                "max_depth": args.depth,
            }
        )
        return 0 if witness is not None else 2
    if witness is None:
        print(f"no Core-Termination witness within depth {args.depth} (unknown)")
        return 2
    print(f"c_(T,D) = {witness.bound}; model with {len(witness.model)} facts:")
    for item in sorted(witness.model, key=repr):
        print(" ", item)
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from .frontier.td import figure1_apex_counts

    rows = figure1_apex_counts(args.n)
    if args.json:
        _emit_json(
            {
                "command": "figure1",
                "n": args.n,
                "levels": [
                    {"level": level, "satisfied": satisfied, "expected": expected}
                    for level, satisfied, expected in rows
                ],
            }
        )
        return 0
    print(f"doubling triangle over G^{2 ** args.n}:")
    for level, satisfied, expected in rows:
        bar = "#" * satisfied
        print(f"  level {level}: {satisfied:>3}/{expected:<3} windows  {bar}")
    return 0


def _cmd_bench_guard(args: argparse.Namespace) -> int:
    from .bench import (
        compare_documents,
        default_baseline_path,
        run_guard_scenarios,
        validate_bench_document,
    )

    baseline_path = Path(
        args.baseline if args.baseline else default_baseline_path(args.quick)
    )
    document = run_guard_scenarios(
        quick=args.quick, repeats=args.repeats, workers=args.workers
    )
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf8"
        )
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf8"
        )
        print(f"# baseline written to {baseline_path}")
        return 0
    if not baseline_path.exists():
        print(
            f"# no baseline at {baseline_path}; run with --update to create one",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf8"))
    validate_bench_document(baseline)
    report = compare_documents(document, baseline, tolerance=args.tolerance)
    if args.json:
        _emit_json(
            {
                "command": "bench-guard",
                "ok": report.ok,
                "tolerance": args.tolerance,
                "baseline": str(baseline_path),
                "missing": report.missing,
                "rows": [
                    {
                        "name": row.name,
                        "baseline_seconds": row.baseline_seconds,
                        "current_seconds": row.current_seconds,
                        "normalized_ratio": round(row.normalized_ratio, 4),
                        "value_matches": row.value_matches,
                        "regressed": row.regressed,
                    }
                    for row in report.rows
                ],
            }
        )
        return 0 if report.ok else 1
    print(report.table().render())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import OMQAService

    budget = ChaseBudget(
        max_rounds=args.rounds,
        max_atoms=args.max_atoms,
        deadline_s=args.chase_deadline,
    )

    async def run() -> int:
        service = OMQAService(
            host=args.host,
            port=args.port,
            db_dir=args.db_dir,
            workers=args.workers,
            deadline=args.deadline,
            chase_budget=budget,
        )
        await service.start()
        if args.json:
            _emit_json(
                {
                    "command": "serve",
                    "address": service.address,
                    "host": service.host,
                    "port": service.port,
                    "workers": args.workers,
                    "db_dir": args.db_dir,
                }
            )
        else:
            print(f"# serving OMQA on {service.address} (Ctrl-C to stop)")
        sys.stdout.flush()

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for signame in ("SIGINT", "SIGTERM"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        try:
            await stop.wait()
        finally:
            # Graceful: stop accepting, drain in-flight, checkpoint WALs.
            await service.shutdown(drain_s=args.drain)
            for signum in installed:
                loop.remove_signal_handler(signum)
        if not args.json:
            print("# drained and checkpointed; bye", file=sys.stderr)
        return 0

    return asyncio.run(run())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .bench.loadgen import run_loadgen

    host = port = None
    if args.url:
        target = args.url
        for prefix in ("http://", "https://"):
            if target.startswith(prefix):
                target = target[len(prefix) :]
        target = target.rstrip("/")
        host, _, port_text = target.partition(":")
        if not port_text:
            print(f"# --url needs host:port, got {args.url!r}", file=sys.stderr)
            return 2
        port = int(port_text)
    report = run_loadgen(
        clients=args.clients,
        ops_per_client=args.ops,
        append_every=args.append_every,
        workers=args.workers,
        quick=args.quick,
        host=host,
        port=port,
    )
    ok = report["digests_match"] and report["errors"] == 0
    if args.json:
        _emit_json({"command": "loadgen", "ok": ok, **report})
        return 0 if ok else 1
    latency = report["latency_ms"]
    print(
        f"# loadgen: {report['clients']} clients x "
        f"{report['ops_per_client']} ops "
        f"({report['ops']['queries']} queries, "
        f"{report['ops']['appends']} appends)"
    )
    print(
        f"# {report['requests']} requests in {report['seconds']}s = "
        f"{report['throughput_rps']} req/s; "
        f"p50 {latency['p50']}ms, p99 {latency['p99']}ms, "
        f"max {latency['max']}ms"
    )
    print(
        f"# journal={report['journal_mode']}, rewriting compiles="
        f"{report['rewrite_cache_misses']} "
        f"(hits={report['rewrite_cache_hits']})"
    )
    for name, digest in sorted(report["final_digests"].items()):
        print(f"#   {name}: {digest}")
    verdict = "all backends digest-identical to a fresh from-scratch answer"
    if not report["digests_match"]:
        verdict = f"DIGEST MISMATCH: {report['backend_digests']}"
    if report["errors"]:
        verdict = f"{report['errors']} ERRORS: {report['error_samples']}"
    print(f"# {verdict}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    chase_cmd = commands.add_parser("chase", help="materialize a chase prefix")
    chase_cmd.add_argument("theory")
    chase_cmd.add_argument("instance", nargs="?", default=None)
    chase_cmd.add_argument("--rounds", type=int, default=10)
    chase_cmd.add_argument("--max-atoms", type=int, default=100_000)
    chase_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; the chase stops at the next safe point "
        "and leaves resumable state (ChaseBudget.deadline_s)",
    )
    chase_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="round-executor process count (default: in-process; results "
        "are identical either way, see docs/performance.md)",
    )
    chase_cmd.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=DEFAULT_CHASE_BACKEND,
        help="where the chase runs: the object engine in RAM, the "
        "columnar hash-join kernel (default), or a SQLite fact store",
    )
    chase_cmd.add_argument(
        "--db",
        default=None,
        help="SQLite database path for --backend sqlite (default: in-memory)",
    )
    chase_cmd.add_argument(
        "--resume",
        action="store_true",
        help="continue a budget-stopped chase persisted at --db "
        "(the INSTANCE argument is ignored; the stored round 0 is the base)",
    )
    _add_common(chase_cmd, stats=True)
    chase_cmd.set_defaults(handler=_cmd_chase)

    update_cmd = commands.add_parser(
        "update", help="incrementally maintain a chased fixpoint"
    )
    update_cmd.add_argument("theory")
    update_cmd.add_argument(
        "instance",
        nargs="?",
        default=None,
        help="base instance (memory/columnar; sqlite reads the --db state)",
    )
    update_cmd.add_argument(
        "--add",
        default=None,
        metavar="FACTS",
        help="facts to add, in instance syntax (path, or literal with -e)",
    )
    update_cmd.add_argument(
        "--retract",
        default=None,
        metavar="FACTS",
        help="base facts to retract, in instance syntax",
    )
    update_cmd.add_argument("--rounds", type=int, default=100)
    update_cmd.add_argument("--max-atoms", type=int, default=500_000)
    update_cmd.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=DEFAULT_CHASE_BACKEND,
        help="maintain in RAM (memory/columnar) or inside a SQLite store",
    )
    update_cmd.add_argument(
        "--db",
        default=None,
        help="SQLite database holding a terminated store chase (--backend sqlite)",
    )
    update_cmd.add_argument(
        "--verify",
        action="store_true",
        help="cross-check the maintained digest against a from-scratch chase "
        "(memory/columnar only; exits 1 on mismatch)",
    )
    _add_common(update_cmd, stats=True)
    update_cmd.set_defaults(handler=_cmd_update)

    rewrite_cmd = commands.add_parser("rewrite", help="UCQ rewriting (Theorem 1)")
    rewrite_cmd.add_argument("theory")
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--max-kept", type=int, default=2_000)
    rewrite_cmd.add_argument("--max-steps", type=int, default=200_000)
    rewrite_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for frontier batches (same output as "
        "sequential, counter for counter; see docs/performance.md)",
    )
    _add_common(rewrite_cmd, stats=True)
    rewrite_cmd.set_defaults(handler=_cmd_rewrite)

    answer_cmd = commands.add_parser("answer", help="certain answers")
    answer_cmd.add_argument("theory")
    answer_cmd.add_argument("instance")
    answer_cmd.add_argument("query")
    answer_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the materialization chase, if one runs",
    )
    answer_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for any fallback materialization chase",
    )
    answer_cmd.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="memory",
        help="evaluate the rewriting over objects in RAM, as hash joins "
        "over interned ids (columnar), or inside a SQLite store",
    )
    answer_cmd.add_argument(
        "--db",
        default=None,
        help="SQLite database path for --backend sqlite (default: in-memory)",
    )
    _add_common(answer_cmd, stats=True)
    answer_cmd.set_defaults(handler=_cmd_answer)

    classify_cmd = commands.add_parser("classify", help="syntactic classes")
    classify_cmd.add_argument("theory")
    classify_cmd.add_argument("--name", default="theory")
    _add_common(classify_cmd)
    classify_cmd.set_defaults(handler=_cmd_classify)

    termination_cmd = commands.add_parser(
        "termination", help="Core-Termination probe"
    )
    termination_cmd.add_argument("theory")
    termination_cmd.add_argument("instance")
    termination_cmd.add_argument("--depth", type=int, default=15)
    _add_common(termination_cmd)
    termination_cmd.set_defaults(handler=_cmd_termination)

    figure_cmd = commands.add_parser("figure1", help="Figure 1 triangle")
    figure_cmd.add_argument("-n", type=int, default=3, choices=(1, 2, 3))
    figure_cmd.add_argument(
        "--json", action="store_true", help="emit a JSON document instead of text"
    )
    figure_cmd.set_defaults(handler=_cmd_figure1)

    guard_cmd = commands.add_parser(
        "bench-guard", help="benchmark regression guard (BENCH_*.json)"
    )
    guard_cmd.add_argument(
        "--quick", action="store_true", help="reduced scenario sizes (CI mode)"
    )
    guard_cmd.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed calibration-normalized slowdown (0.25 = 25%%)",
    )
    guard_cmd.add_argument(
        "--baseline", default=None, help="baseline JSON path (default per mode)"
    )
    guard_cmd.add_argument(
        "--repeats", type=int, default=3, help="samples per scenario (best wins)"
    )
    guard_cmd.add_argument(
        "--update", action="store_true", help="rewrite the baseline and exit"
    )
    guard_cmd.add_argument(
        "--output", default=None, help="also write the fresh BENCH document here"
    )
    guard_cmd.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    guard_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the parallel_equivalence scenario (default 4)",
    )
    guard_cmd.set_defaults(handler=_cmd_bench_guard)

    serve_cmd = commands.add_parser(
        "serve", help="run the OMQA HTTP service (repro.service)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = pick a free one)"
    )
    serve_cmd.add_argument(
        "--db-dir",
        default=None,
        help="directory for per-theory SQLite databases (default: a "
        "temporary directory removed on shutdown)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=4,
        help="threadpool size for engine work (each worker keeps its own "
        "WAL read connections)",
    )
    serve_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock bound; overruns answer 503",
    )
    serve_cmd.add_argument(
        "--drain",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long shutdown waits for in-flight requests",
    )
    serve_cmd.add_argument(
        "--rounds", type=int, default=100, help="chase budget: max rounds"
    )
    serve_cmd.add_argument(
        "--max-atoms", type=int, default=500_000, help="chase budget: max atoms"
    )
    serve_cmd.add_argument(
        "--chase-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="chase budget: wall-clock bound per chase (ChaseBudget.deadline_s)",
    )
    serve_cmd.add_argument(
        "--json",
        action="store_true",
        help="announce the bound address as JSON on stdout",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    loadgen_cmd = commands.add_parser(
        "loadgen", help="concurrent-load bench against the OMQA service"
    )
    loadgen_cmd.add_argument(
        "--clients", type=int, default=8, help="concurrent client connections"
    )
    loadgen_cmd.add_argument(
        "--ops", type=int, default=24, help="operations per client"
    )
    loadgen_cmd.add_argument(
        "--append-every",
        type=int,
        default=6,
        help="every Nth op per client is an append (the rest are queries)",
    )
    loadgen_cmd.add_argument(
        "--workers",
        type=int,
        default=4,
        help="threadpool size of the in-process server (ignored with --url)",
    )
    loadgen_cmd.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke plan: at most 4 clients x 12 ops",
    )
    loadgen_cmd.add_argument(
        "--url",
        default=None,
        help="target an already-running server (host:port) instead of "
        "spinning one up in-process",
    )
    loadgen_cmd.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    loadgen_cmd.set_defaults(handler=_cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
