"""repro: an executable reproduction of *A Journey to the Frontiers of
Query Rewritability* (PODS 2022).

Subpackages
-----------
``repro.logic``
    First-order substrate: terms, atoms, instances, TGDs, CQs,
    homomorphisms, containment.
``repro.chase``
    The semi-oblivious Skolem chase (Definition 6), variants, provenance,
    and the Core-Termination machinery (Section 5).
``repro.rewriting``
    UCQ piece-rewriting (the FUS algorithm behind Theorem 1), BDD
    diagnostics, and end-to-end query answering strategies.
``repro.classes``
    Syntactic theory classes: linear, datalog, (frontier-)guarded, sticky,
    backward shy.
``repro.frontier``
    The paper's contribution: locality, bd-locality, distancing, the
    FUS/FES pipeline (Theorem 4), the marked-query five-operation process
    for T_d (Theorem 5), its T_d^K generalization (Theorem 6) and the
    Appendix-A normalization (Theorem 3).
``repro.workloads``
    Every named theory and witness-instance family from the paper.
``repro.bench``
    The parameter-sweep harness behind benchmarks/ and EXPERIMENTS.md.
``repro.storage``
    Pluggable fact stores (RAM / SQLite): UCQ rewritings compiled to SQL,
    chase checkpoint/resume, and a store-backed chase with bounded RSS.
"""

__version__ = "1.0.0"

# Convenient top-level re-exports for the most used entry points.
from .chase import CancellationToken, ChaseBudget, ChaseCancelled
from .chase import chase as run_chase
from .chase import core_termination, is_model
from .logic import (
    Instance,
    Theory,
    evaluate,
    holds,
    parse_instance,
    parse_query,
    parse_rule,
    parse_theory,
)
from .incremental import UpdateOutcome, incremental_update, update_store_chase
from .rewriting import OMQASession, RewritingBudget, answer, certain_answers
from .storage import open_store
from .telemetry import Telemetry

__all__ = [
    "CancellationToken",
    "ChaseBudget",
    "ChaseCancelled",
    "Instance",
    "UpdateOutcome",
    "incremental_update",
    "update_store_chase",
    "OMQASession",
    "RewritingBudget",
    "Telemetry",
    "Theory",
    "answer",
    "certain_answers",
    "core_termination",
    "evaluate",
    "holds",
    "is_model",
    "open_store",
    "parse_instance",
    "parse_query",
    "parse_rule",
    "parse_theory",
    "run_chase",
]
