"""The asyncio server: connections, threadpool, deadline, shutdown.

:class:`OMQAService` glues the codec (:mod:`repro.service.http`), the
application (:mod:`repro.service.app`) and the registry
(:mod:`repro.service.registry`) to ``asyncio.start_server``.  Requests
are handled on the event loop; engine work hops to one shared
``ThreadPoolExecutor`` (``workers`` threads — each worker owns its WAL
read connections via the registry's thread-locals).

Lifecycle contract (the ``repro serve`` CLI wires SIGINT/SIGTERM to
:meth:`OMQAService.shutdown`):

1. stop accepting new connections;
2. drain in-flight requests (bounded by ``drain_s``);
3. checkpoint every theory's WAL into its database file;
4. close sessions, stores and the executor.

``deadline`` (seconds, optional) bounds each request's wall time with
``asyncio.wait_for``; a timeout answers 503 and counts
``service.deadline_timeouts`` (the executor job it abandoned finishes
in the background — deadlines bound the *client's* wait, they are not
cancellation; pair with small chase budgets to bound the work itself).
"""

from __future__ import annotations

import asyncio
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..chase.engine import ChaseBudget
from .app import ServiceApp
from .http import ProtocolError, encode_response, read_request
from .registry import TheoryRegistry

DEFAULT_WORKERS = 4


class OMQAService:
    """An OMQA HTTP service bound to one registry of theories."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        db_dir: "str | Path | None" = None,
        workers: int = DEFAULT_WORKERS,
        deadline: "float | None" = None,
        chase_budget: "ChaseBudget | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        if db_dir is None:
            # Ephemeral service: theories live for the process.  A real
            # directory (not ":memory:") because WAL needs a file and
            # reader threads need their own connections to it.
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            db_dir = self._tempdir.name
        else:
            self._tempdir = None
        self.registry = TheoryRegistry(db_dir, chase_budget=chase_budget)
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-service"
        )
        self.app = ServiceApp(self.registry, self.executor)
        self.deadline = deadline
        self._server: "asyncio.Server | None" = None
        self._inflight: "set[asyncio.Task]" = set()
        self._closing = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` is called (CLI entry point)."""
        if self._server is None:
            await self.start()
        await self._closing.wait()

    async def shutdown(self, drain_s: float = 10.0) -> None:
        """Graceful stop: drain, checkpoint, close (idempotent)."""
        if self._closing.is_set():
            return
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._inflight:
            await asyncio.wait(set(self._inflight), timeout=drain_s)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.registry.checkpoint_all)
        await loop.run_in_executor(None, self.registry.close_all)
        self.executor.shutdown(wait=False)
        if self._tempdir is not None:
            self._tempdir.cleanup()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._closing.is_set():
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    document = {
                        "error": {"code": "bad_request", "message": str(exc)}
                    }
                    writer.write(
                        encode_response(400, document, keep_alive=False)
                    )
                    await writer.drain()
                    return
                except asyncio.IncompleteReadError:
                    return
                if request is None:
                    return
                task = asyncio.ensure_future(
                    self._respond(request.method, request.path, request.body)
                )
                self._inflight.add(task)
                try:
                    status, document = await task
                finally:
                    self._inflight.discard(task)
                keep = request.keep_alive and not self._closing.is_set()
                writer.write(encode_response(status, document, keep_alive=keep))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, method: str, path: str, body: object):
        if self.deadline is None:
            return await self.app.dispatch(method, path, body)
        try:
            return await asyncio.wait_for(
                self.app.dispatch(method, path, body), timeout=self.deadline
            )
        except asyncio.TimeoutError:
            self.app.stats.counters["service.deadline_timeouts"] += 1
            self.app.stats.counters["service.responses_5xx"] += 1
            return 503, {
                "error": {
                    "code": "deadline",
                    "message": f"request exceeded {self.deadline}s",
                }
            }
