"""A minimal asyncio client for the OMQA service (tests, smoke, loadgen).

One :class:`ServiceClient` holds one keep-alive connection; its methods
mirror the API routes and return the decoded JSON document, raising
:class:`ServiceError` on non-2xx statuses.  Deliberately tiny — the
stdlib-only constraint means no ``aiohttp``, and the bench/test callers
need exactly request/response with Content-Length framing.
"""

from __future__ import annotations

import asyncio
import json

from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery
from ..logic.serialize import instance_to_json, query_to_json, theory_to_json
from ..logic.tgd import Theory


class ServiceError(RuntimeError):
    """A non-2xx response (carries the status and error document)."""

    def __init__(self, status: int, document: object) -> None:
        message = document
        if isinstance(document, dict):
            message = document.get("error", document)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.document = document


class ServiceClient:
    """One persistent connection to an :class:`OMQAService`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def request(
        self, method: str, path: str, body: "object | None" = None
    ) -> tuple[int, object]:
        """One request/response exchange; returns ``(status, document)``."""
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        close_after = False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
            if (
                name.strip().lower() == "connection"
                and value.strip().lower() == "close"
            ):
                close_after = True
        raw = await self._reader.readexactly(length) if length else b""
        if close_after:
            await self.close()
        return status, (json.loads(raw) if raw else None)

    async def _expect_2xx(self, method: str, path: str, body=None):
        status, document = await self.request(method, path, body)
        if status // 100 != 2:
            raise ServiceError(status, document)
        return document

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    async def healthz(self) -> dict:
        return await self._expect_2xx("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self._expect_2xx("GET", "/metrics")

    async def register_theory(self, theory: Theory) -> dict:
        return await self._expect_2xx(
            "POST", "/theories", {"theory": theory_to_json(theory)}
        )

    async def theory_info(self, theory_id: str) -> dict:
        return await self._expect_2xx("GET", f"/theories/{theory_id}")

    async def upload_facts(self, theory_id: str, instance: Instance) -> dict:
        return await self._expect_2xx(
            "POST",
            f"/theories/{theory_id}/instances",
            {"mode": "replace", "instance": instance_to_json(instance)},
        )

    async def append_facts(self, theory_id: str, facts) -> dict:
        return await self._expect_2xx(
            "POST",
            f"/theories/{theory_id}/instances",
            {"mode": "append", "instance": instance_to_json(Instance(facts))},
        )

    async def retract_facts(self, theory_id: str, facts) -> dict:
        return await self._expect_2xx(
            "DELETE",
            f"/theories/{theory_id}/facts",
            {"instance": instance_to_json(Instance(facts))},
        )

    async def query(
        self,
        theory_id: str,
        query: ConjunctiveQuery,
        backend: str = "memory",
    ) -> dict:
        return await self._expect_2xx(
            "POST",
            f"/theories/{theory_id}/query",
            {"query": query_to_json(query), "backend": backend},
        )
