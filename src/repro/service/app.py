"""Route table and request handlers for the OMQA service.

The JSON API (all request/response bodies are JSON; see
``docs/service.md`` for curl examples):

===========  =================================  =================================
Method       Path                               Action
===========  =================================  =================================
``POST``     ``/theories``                      register a theory → id + classes
``GET``      ``/theories``                      list registered theory ids
``GET``      ``/theories/{id}``                 theory info (classes, version)
``POST``     ``/theories/{id}/instances``       upload (replace) or append facts
``DELETE``   ``/theories/{id}/facts``           retract facts (DRed maintenance)
``POST``     ``/theories/{id}/query``           certain answers for a CQ
``GET``      ``/healthz``                       liveness probe
``GET``      ``/metrics``                       counters, per-theory + process
===========  =================================  =================================

Handlers run on the event loop; anything that chases, rewrites or
evaluates hops to the server's threadpool (the sessions and stores are
thread-safe / thread-local by design, see :mod:`repro.service.registry`).

Error contract: decode failures and unknown backends → 400, unknown
theory ids → 404, wrong method on a known path → 405, updates that blow
the chase budget or violate DRed preconditions → 409, queries no sound
route can answer → 422, everything unexpected → 500 with the exception
text.  Every error body is ``{"error": {"code": ..., "message": ...}}``.

``service.*`` counters (all mutated on the event loop only):

=============================  ==============================================
``service.requests``           HTTP requests parsed
``service.responses_2xx``      successful responses
``service.responses_4xx``      client-error responses
``service.responses_5xx``      server-error responses
``service.theories``           theories registered
``service.uploads``            replace-mode instance uploads
``service.appends``            append-mode fact batches
``service.retracts``           retraction batches
``service.queries``            query requests answered
``service.deadline_timeouts``  requests cut off by ``--deadline``
===========================================================================
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from ..logic.parser import ParseError
from ..logic.serialize import (
    SerializationError,
    instance_from_json,
    query_from_json,
    theory_from_json,
)
from ..storage.chasestore import StoreChaseError
from ..telemetry import Telemetry
from .registry import (
    BACKENDS,
    ChaseBudgetExceededInStore,
    TheoryRegistry,
    answers_digest,
    answers_to_json,
)


class ApiError(Exception):
    """An error with a deliberate HTTP status (everything else is 500)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code

    def document(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


def _decode(decoder, payload):
    try:
        return decoder(payload)
    except (SerializationError, ParseError) as exc:
        raise ApiError(400, "bad_payload", str(exc)) from exc


def _require_object(body: object) -> dict:
    if not isinstance(body, dict):
        raise ApiError(400, "bad_payload", "request body must be a JSON object")
    return body


class ServiceApp:
    """The HTTP-facing application: routes, handlers, service counters."""

    def __init__(
        self,
        registry: TheoryRegistry,
        executor,
        stats: "Telemetry | None" = None,
    ) -> None:
        self.registry = registry
        self.executor = executor
        self.stats = stats if stats is not None else Telemetry()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, method: str, path: str, body: object):
        """Route one request; returns ``(status, document)``."""
        self.stats.counters["service.requests"] += 1
        try:
            status, document = await self._route(method, path, body)
        except ApiError as exc:
            status, document = exc.status, exc.document()
        except (
            ChaseBudgetExceededInStore,
            StoreChaseError,
            ValueError,
        ) as exc:
            # Updates the maintenance layer refuses: budget overruns,
            # retracting derived facts, add∩retract overlaps, foreign
            # chase state.
            status = 409
            document = {"error": {"code": "conflict", "message": str(exc)}}
        except RuntimeError as exc:
            # "rewriting incomplete" and friends: the request was
            # well-formed but no sound route exists under the budgets.
            status = 422
            document = {"error": {"code": "unanswerable", "message": str(exc)}}
        except Exception as exc:  # noqa: BLE001 — the server must answer
            status = 500
            document = {
                "error": {"code": type(exc).__name__, "message": str(exc)}
            }
        self.stats.counters[f"service.responses_{status // 100}xx"] += 1
        return status, document

    async def _route(self, method: str, path: str, body: object):
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            self._expect(method, "GET")
            return 200, {"ok": True, "theories": len(self.registry.ids())}
        if parts == ["metrics"]:
            self._expect(method, "GET")
            return 200, self._metrics()
        if parts == ["theories"]:
            if method == "GET":
                return 200, {"theories": self.registry.ids()}
            self._expect(method, "POST")
            return await self._register(body)
        if len(parts) >= 2 and parts[0] == "theories":
            entry = self._entry(parts[1])
            rest = parts[2:]
            if not rest:
                self._expect(method, "GET")
                return 200, self._info(entry)
            if rest == ["instances"]:
                self._expect(method, "POST")
                return await self._upload(entry, body)
            if rest == ["facts"]:
                self._expect(method, "DELETE")
                return await self._retract(entry, body)
            if rest == ["query"]:
                self._expect(method, "POST")
                return await self._query(entry, body)
        raise ApiError(404, "not_found", f"no route for {path}")

    def _expect(self, method: str, wanted: str) -> None:
        if method != wanted:
            raise ApiError(405, "method_not_allowed", f"use {wanted}")

    def _entry(self, theory_id: str):
        try:
            return self.registry.get(theory_id)
        except KeyError:
            raise ApiError(
                404, "unknown_theory", f"no theory {theory_id!r}"
            ) from None

    async def _offload(self, fn: Callable, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self.executor, fn, *args)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _register(self, body: object):
        payload = _require_object(body)
        theory = _decode(theory_from_json, payload.get("theory"))
        entry = await self._offload(self.registry.register, theory)
        self.stats.counters["service.theories"] += 1
        return 201, {"id": entry.id, "classes": entry.classes}

    def _info(self, entry) -> dict:
        return {
            "id": entry.id,
            "classes": entry.classes,
            "rules": len(tuple(entry.theory)),
            "facts": len(entry.base),
            "version": entry.version,
            "journal_mode": entry.store.journal_mode,
        }

    async def _upload(self, entry, body: object):
        payload = _require_object(body)
        mode = payload.get("mode", "append")
        if mode not in ("append", "replace"):
            raise ApiError(400, "bad_mode", "mode must be 'append' or 'replace'")
        instance = _decode(instance_from_json, payload.get("instance"))
        async with entry.write_lock:
            if mode == "replace":
                version = await self._offload(entry.replace, instance)
                self.stats.counters["service.uploads"] += 1
            else:
                version = await self._offload(
                    entry.apply_update, tuple(instance), ()
                )
                self.stats.counters["service.appends"] += 1
        return 200, {
            "id": entry.id,
            "mode": mode,
            "facts": len(entry.base),
            "version": version,
        }

    async def _retract(self, entry, body: object):
        payload = _require_object(body)
        instance = _decode(instance_from_json, payload.get("instance"))
        async with entry.write_lock:
            version = await self._offload(
                entry.apply_update, (), tuple(instance)
            )
            self.stats.counters["service.retracts"] += 1
        return 200, {
            "id": entry.id,
            "mode": "retract",
            "facts": len(entry.base),
            "version": version,
        }

    async def _query(self, entry, body: object):
        payload = _require_object(body)
        query = _decode(query_from_json, payload.get("query"))
        backend = payload.get("backend", "memory")
        if backend not in BACKENDS:
            raise ApiError(
                400, "bad_backend", f"backend must be one of {BACKENDS}"
            )
        answers = await self._offload(entry.answer, query, backend)
        self.stats.counters["service.queries"] += 1
        return 200, {
            "id": entry.id,
            "backend": backend,
            "version": entry.version,
            "answers": answers_to_json(answers),
            "digest": answers_digest(answers),
        }

    def _metrics(self) -> dict:
        process = Telemetry()
        process.merge(self.stats)
        theories = {}
        for entry in self.registry.entries():
            theories[entry.id] = {
                "version": entry.version,
                "facts": len(entry.base),
                "journal_mode": entry.store.journal_mode,
                "counters": {
                    name: entry.session.stats.counters[name]
                    for name in sorted(entry.session.stats.counters)
                },
            }
            process.merge(entry.session.stats)
        return {
            "process": {
                name: process.counters[name]
                for name in sorted(process.counters)
            },
            "theories": theories,
        }


Handler = Callable[[str, str, object], Awaitable[tuple]]
