"""OMQA as a service: the asyncio HTTP layer over the engine (§ROADMAP 1).

First-order rewritability is what makes ontology-mediated query
answering *servable*: compile the rewriting once per (theory, query
shape), then answer every request by plain query evaluation.  This
package is that deployment shape — a stdlib-only HTTP/1.1 JSON API
where each theory owns one shared thread-safe
:class:`~repro.rewriting.session.OMQASession` (single-flight compiled
caches) and one WAL-mode SQLite database (one serialized writer
chasing, many threadpool readers answering).

Modules: :mod:`~repro.service.http` (codec),
:mod:`~repro.service.registry` (per-theory state + concurrency model),
:mod:`~repro.service.app` (routes), :mod:`~repro.service.server`
(lifecycle), :mod:`~repro.service.client` (asyncio client).
"""

from .app import ApiError, ServiceApp
from .client import ServiceClient, ServiceError
from .registry import TheoryEntry, TheoryRegistry, answers_digest, answers_to_json
from .server import OMQAService

__all__ = [
    "ApiError",
    "OMQAService",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "TheoryEntry",
    "TheoryRegistry",
    "answers_digest",
    "answers_to_json",
]
