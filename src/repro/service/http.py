"""A small HTTP/1.1 codec over asyncio streams — just enough for the API.

The service speaks JSON over plain HTTP/1.1 with ``Content-Length``
framing and keep-alive connections; this module owns the byte-level
reading and writing so :mod:`repro.service.app` can think in
``(method, path, json_body)`` triples.  Deliberately *not* a general
web server: no chunked transfer, no multipart, no TLS — the stdlib-only
constraint (ROADMAP: no new runtime deps) rules out every framework,
and the API needs none of the above.

Limits are enforced while reading (64 KiB of headers, 64 MiB of body)
so a misbehaving client cannot balloon the process; violations raise
:class:`ProtocolError`, which the server answers with 400 and a close.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """The peer sent bytes this codec refuses to interpret."""


@dataclass
class Request:
    """One parsed HTTP request (body already decoded from JSON)."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: object = None

    @property
    def keep_alive(self) -> bool:
        # HTTP/1.1 default is persistent; only an explicit close drops it.
        return self.headers.get("connection", "").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed framing or JSON, and
    ``asyncio.IncompleteReadError`` when the peer hangs up mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("header block exceeds the stream limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("header block too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise ProtocolError("chunked transfer encoding is not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"refused Content-Length {length}")

    raw = await reader.readexactly(length) if length else b""
    body: object = None
    if raw:
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from exc

    # Strip any query string; the API carries every parameter in JSON.
    path = target.split("?", 1)[0]
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def encode_response(
    status: int, document: object, *, keep_alive: bool = True
) -> bytes:
    """Serialize a JSON response with Content-Length framing."""
    payload = (json.dumps(document, sort_keys=True) + "\n").encode("utf8")
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload
