"""Theory registry: one shared :class:`OMQASession` + live store per theory.

The service's concurrency model lives here:

* **One session per theory.**  Every request for a theory goes through
  the same thread-safe :class:`~repro.rewriting.session.OMQASession`,
  so the compiled-rewriting and compiled-SQL caches are shared across
  concurrent requests — the first request for a query shape compiles
  the rewriting once (single-flight, under the session lock) and every
  later request is a ``session.rewrite_cache_hits`` hit.
* **One writer, many readers (WAL).**  Each theory owns a SQLite
  database opened in WAL mode.  Writes (upload / append / retract) are
  serialized per theory by an :class:`asyncio.Lock` held on the event
  loop and executed on the threadpool through
  :func:`~repro.storage.chasestore.update_store_chase`, so the live
  store always holds a *chased* fixpoint.  Reads never take that lock:
  each worker thread keeps its own read connection to the same file
  (WAL readers do not block the writer and vice versa) and answers by
  evaluating the rewriting UCQ as SQL over the chased facts.
* **Versioned readers.**  The writer bumps ``version`` per committed
  update and ``generation`` per replace.  A reader reconciles before
  every query: same generation → refresh the predicate-table catalog
  (interning is append-only, so cached term ids stay valid); new
  generation → reopen the connection (a replace rebuilds the database,
  invalidating interned ids).

Soundness of the read path: the store holds ``chase(D)`` at a fixpoint,
and for a fixpoint instance evaluating the (complete) rewriting — or,
when the rewriting is incomplete, the query shape itself — computes
``q(chase(D))``; restricting answer tuples to the *base* domain then
yields exactly the certain answers (the same filter
``answer_by_materialization`` applies in memory).
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import threading
from pathlib import Path
from typing import Iterable

from ..chase.engine import ChaseBudget
from ..classes import classify
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery, UnionOfCQs
from ..logic.terms import Term
from ..logic.tgd import Theory
from ..rewriting.session import OMQASession, query_shape
from ..storage.chasestore import chase_into_store, update_store_chase
from ..storage.sqlcompile import evaluate_ucq_sql
from ..storage.sqlite import SQLiteStore

BACKENDS = ("memory", "columnar", "sqlite")


def answers_digest(answers: "set[tuple[Term, ...]]") -> str:
    """Order-independent digest of an answer set (the wire contract).

    Mirrors :func:`repro.storage.base.content_digest`'s shape — sha256
    over sorted reprs, truncated to 16 hex — so two backends (or a
    server and a fresh in-process session) agree on a digest exactly
    when they agree on the answers.
    """
    hasher = hashlib.sha256()
    for tup in sorted(repr(t) for t in answers):
        hasher.update(tup.encode("utf8"))
        hasher.update(b"\n")
    return hasher.hexdigest()[:16]


def answers_to_json(answers: "set[tuple[Term, ...]]") -> list[list[str]]:
    """Answer tuples as sorted lists of term reprs (deterministic wire)."""
    return sorted([repr(term) for term in tup] for tup in answers)


class _Reader:
    """One worker thread's read connection, with reconciliation state."""

    __slots__ = ("store", "version", "generation")

    def __init__(self, store: SQLiteStore, version: int, generation: int):
        self.store = store
        self.version = version
        self.generation = generation


class TheoryEntry:
    """Everything the service holds for one registered theory."""

    def __init__(
        self,
        theory_id: str,
        theory: Theory,
        db_path: Path,
        chase_budget: "ChaseBudget | None" = None,
    ) -> None:
        self.id = theory_id
        self.theory = theory
        self.db_path = Path(db_path)
        self.session = OMQASession(theory, chase_budget=chase_budget)
        report = classify(theory)
        self.classes = dataclasses.asdict(report)
        self.classes["known_bdd_by_syntax"] = report.known_bdd_by_syntax()
        # Serializes upload/append/retract per theory; held on the event
        # loop across the executor hop, so the store-chase writer is
        # single at any moment (the WAL story needs exactly one writer).
        self.write_lock = asyncio.Lock()
        self.base = Instance()
        self.version = 0
        self.generation = 0
        # The writer connection; chased state lives here.  Telemetry is
        # the session's collector, so /metrics shows store.* alongside
        # rewrite.*/chase.*/session.* per theory.
        self.store = SQLiteStore(
            str(self.db_path), telemetry=self.session.stats, wal=True
        )
        chase_into_store(
            theory, Instance(), self.store, budget=self.session.chase_budget
        )
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Writer side (call on the threadpool, under ``write_lock``)
    # ------------------------------------------------------------------
    def apply_update(self, add: Iterable = (), retract: Iterable = ()) -> int:
        """Maintain base + session caches + chased store; new version.

        Raises ``ValueError`` (bad update, e.g. retracting a derived
        fact) or :class:`~repro.storage.chasestore.StoreChaseError`;
        either way the in-memory base is only swapped after the store
        commit succeeded, so readers never observe a half-applied
        update.
        """
        add = list(add)
        retract = list(retract)
        new_base = self.base
        if retract:
            new_base = self.session.retract_facts(new_base, retract)
        if add:
            new_base = self.session.add_facts(new_base, add)
        result = update_store_chase(
            self.store,
            theory=self.theory,
            add=add,
            retract=retract,
            budget=self.session.chase_budget,
        )
        if not result.terminated:
            raise ChaseBudgetExceededInStore(
                "store chase did not reach a fixpoint within "
                f"{self.session.chase_budget}"
            )
        self.base = new_base
        self.version += 1
        return self.version

    def replace(self, instance: Instance) -> int:
        """Reset the theory's data to exactly ``instance`` (re-chased).

        Rebuilds the database file, so interned term ids start over —
        hence the ``generation`` bump that makes every reader reopen.
        """
        self.store.close()
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(self.db_path) + suffix)
            if candidate.exists():
                candidate.unlink()
        self.store = SQLiteStore(
            str(self.db_path), telemetry=self.session.stats, wal=True
        )
        result = chase_into_store(
            self.theory, instance, self.store, budget=self.session.chase_budget
        )
        if not result.terminated:
            raise ChaseBudgetExceededInStore(
                "store chase did not reach a fixpoint within "
                f"{self.session.chase_budget}"
            )
        self.base = instance.copy()
        self.version += 1
        self.generation += 1
        return self.version

    def checkpoint(self) -> None:
        """Flush the WAL into the main database file (shutdown path)."""
        self.store.connection.commit()
        if self.store.journal_mode == "wal":
            self.store.connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    # ------------------------------------------------------------------
    # Reader side (call on the threadpool; no locks taken)
    # ------------------------------------------------------------------
    def _reader_store(self) -> SQLiteStore:
        reader: "_Reader | None" = getattr(self._local, "reader", None)
        generation, version = self.generation, self.version
        if reader is None or reader.generation != generation:
            if reader is not None:
                reader.store.close()
            store = SQLiteStore(
                str(self.db_path), telemetry=self.session.stats, wal=True
            )
            reader = _Reader(store, version, generation)
            self._local.reader = reader
        elif reader.version != version:
            # Same database, new committed rounds: refresh the predicate
            # catalog (new tables may exist); interned ids stay valid.
            reader.store.reload_catalog()
            reader.version = version
        return reader.store

    def answer(
        self, query: ConjunctiveQuery, backend: str = "memory"
    ) -> "set[tuple[Term, ...]]":
        """Certain answers for ``query`` over the live instance."""
        if backend == "memory":
            return self.session.answer(query, self.base, strategy="auto")
        if backend == "columnar":
            return self.session.answer(query, self.base, strategy="columnar")
        if backend != "sqlite":
            raise ValueError(f"backend must be one of {BACKENDS}")
        # sqlite: evaluate over this thread's WAL reader — prepare() is
        # the only session call, so reads share the rewriting cache but
        # never serialize on store loading.
        prepared = self.session.prepare(query)
        shape = query_shape(query)
        target = prepared.ucq if prepared.complete else UnionOfCQs((shape,))
        store = self._reader_store()
        answers = evaluate_ucq_sql(target, store)
        domain = self.base.domain()
        answers = {
            tup for tup in answers if all(term in domain for term in tup)
        }
        if prepared.always_true and query.is_boolean() and len(self.base):
            answers.add(())
        return answers

    def close(self) -> None:
        self.session.close()
        self.store.close()
        reader = getattr(self._local, "reader", None)
        if reader is not None:
            reader.store.close()
            self._local.reader = None


class ChaseBudgetExceededInStore(RuntimeError):
    """A live update left the store short of a fixpoint (HTTP 409)."""


class TheoryRegistry:
    """The service's id → :class:`TheoryEntry` map."""

    def __init__(
        self, db_dir: "str | Path", chase_budget: "ChaseBudget | None" = None
    ) -> None:
        self.db_dir = Path(db_dir)
        self.db_dir.mkdir(parents=True, exist_ok=True)
        self.chase_budget = chase_budget
        self._entries: dict[str, TheoryEntry] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    def register(self, theory: Theory) -> TheoryEntry:
        with self._lock:
            theory_id = f"t{self._next_id}"
            self._next_id += 1
            entry = TheoryEntry(
                theory_id,
                theory,
                self.db_dir / f"{theory_id}.db",
                chase_budget=self.chase_budget,
            )
            self._entries[theory_id] = entry
            return entry

    def get(self, theory_id: str) -> TheoryEntry:
        with self._lock:
            entry = self._entries.get(theory_id)
        if entry is None:
            raise KeyError(theory_id)
        return entry

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._entries, key=lambda tid: int(tid[1:]))

    def entries(self) -> list[TheoryEntry]:
        return [self.get(tid) for tid in self.ids()]

    def checkpoint_all(self) -> None:
        for entry in self.entries():
            entry.checkpoint()

    def close_all(self) -> None:
        for entry in self.entries():
            entry.close()
