"""Parallel frontier batches for rewriting saturation.

The batch-structured saturation loop (:func:`repro.rewriting.engine.rewrite`)
separates *speculative unifier enumeration* — a pure function of the
canonical frontier CQ and the theory — from the *replay* that applies
kept-set logic in deterministic order.  Only the enumeration is
parallelized here: each frontier batch is sliced round-robin over a pool of
worker processes, every worker enumerates, cores and canonicalizes its
CQs' outcomes, and the coordinator reassembles the outcome lists by batch
position before the engine replays them.  Because canonicalization erases
all fresh-variable naming and the replay order is position → rule →
unifier, the kept set and every ``rewrite.*`` counter are byte-identical
to the sequential run (``tests/test_rewriting_fastpath.py`` pins this).

The plumbing deliberately reuses the chase pool's idiom
(:mod:`repro.chase.parallel`): fork-preferred start method, one duplex
pipe per worker with a strict request/response protocol, and the
incremental interning wire codec (:class:`~repro.chase.parallel._WireEncoder`
/ :class:`~repro.chase.parallel._WireDecoder`) so a variable, constant or
predicate crosses each pipe direction once as a definition and afterwards
as a bare integer.  Unlike the chase pool there is no worker respawn: a
rewriting batch is cheap to recompute, so *any* pool failure — a dead
worker, a codec error, a worker shipping a traceback — permanently
degrades the run to in-process enumeration (``unify_batch`` returns
``None`` and the engine carries on sequentially; the result is unchanged
either way).

Telemetry lives under ``rwparallel.*`` — deliberately not ``rewrite.*``,
so "all ``rewrite.*`` counters are byte-identical to sequential" stays
true verbatim: ``rwparallel.workers`` (pool size),
``rwparallel.batches`` (batches dispatched), ``rwparallel.cqs_shipped``
(frontier CQs sent), ``rwparallel.bytes_sent`` /
``rwparallel.bytes_received`` (serialized payload volume),
``rwparallel.worker_us`` (summed in-worker wall time, microseconds) and
``rwparallel.fallback_inprocess`` (the degrade flag).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback

from ..chase.parallel import _PICKLE_PROTOCOL, _WireDecoder, _WireEncoder
from ..logic.query import ConjunctiveQuery
from ..logic.tgd import Theory
from ..telemetry import Telemetry
from .canonical import adopt_canonical


class _PoolUnavailable(RuntimeError):
    """Internal: the worker pool cannot be (or stay) up."""


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _run_worker_batch(
    rules,
    index,
    use_indexes: bool,
    max_disjunct_atoms: int,
    decoder: _WireDecoder,
    encoder: _WireEncoder,
    message: tuple,
) -> tuple:
    """Enumerate outcomes for this worker's slice of one frontier batch."""
    from .engine import _relevant_rule_indices, unify_frontier_cq

    term_defs, pred_defs, entries = message
    decoder.apply_defs(term_defs, pred_defs)
    started = time.perf_counter()
    out_term_defs: list = []
    out_pred_defs: list = []
    results: list[tuple] = []
    for position, answer_codes, atom_codes in entries:
        query = ConjunctiveQuery(
            tuple(decoder.term(code) for code in answer_codes),
            tuple(decoder.atom(code) for code in atom_codes),
        )
        if use_indexes:
            rule_indices = _relevant_rule_indices(index, query)
        else:
            rule_indices = range(len(rules))
        encoded: list[tuple] = []
        for outcome in unify_frontier_cq(
            query, rules, rule_indices, max_disjunct_atoms
        ):
            if outcome[0] == "cq":
                produced = outcome[1]
                encoded.append(
                    (
                        "cq",
                        tuple(
                            encoder.term(var, out_term_defs)
                            for var in produced.answer_vars
                        ),
                        tuple(
                            encoder.atom(item, out_term_defs, out_pred_defs)
                            for item in produced.atoms
                        ),
                    )
                )
            else:
                encoded.append(outcome)
        results.append((position, encoded))
    seconds = time.perf_counter() - started
    return ("ok", out_term_defs, out_pred_defs, results, seconds)


def _worker_main(conn, theory, max_disjunct_atoms, use_indexes) -> None:
    """Worker process entry point: a strict request/response loop."""
    from .engine import _head_predicate_index

    rules = theory.rules()
    index = _head_predicate_index(theory) if use_indexes else None
    decoder = _WireDecoder()
    encoder = _WireEncoder()
    while True:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError):
            break
        message = pickle.loads(payload)
        if message is None:
            break
        try:
            response = _run_worker_batch(
                rules,
                index,
                use_indexes,
                max_disjunct_atoms,
                decoder,
                encoder,
                message,
            )
        except Exception:  # noqa: BLE001 — shipped to the coordinator
            response = ("err", traceback.format_exc())
        try:
            conn.send_bytes(pickle.dumps(response, _PICKLE_PROTOCOL))
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class FrontierExecutor:
    """Process pool evaluating frontier batches; deterministic reassembly."""

    def __init__(
        self, theory: Theory, budget, telemetry: Telemetry, workers: int
    ) -> None:
        self.telemetry = telemetry
        self.workers = workers
        self._encoder = _WireEncoder()
        self._decoders: list[_WireDecoder] = []
        self._connections: list = []
        self._processes: list = []
        try:
            pickle.dumps(theory, _PICKLE_PROTOCOL)
        except Exception as error:  # unpicklable workload
            raise _PoolUnavailable(f"theory does not serialize: {error!r}")
        try:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else methods[0]
            )
            for _ in range(workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        theory,
                        budget.max_disjunct_atoms,
                        budget.use_indexes,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
                self._decoders.append(_WireDecoder())
        except Exception as error:
            self.close()
            raise _PoolUnavailable(f"cannot start worker processes: {error!r}")
        telemetry.gauge_max("rwparallel.workers", workers)

    def unify_batch(
        self, batch: list[ConjunctiveQuery]
    ) -> list[list[tuple]] | None:
        """Outcome lists for every batch position, or ``None`` to degrade.

        ``None`` tells the engine the pool is gone for good; the engine
        closes the executor and enumerates in-process from then on, so a
        pool failure changes wall-clock, never the result.
        """
        counters = self.telemetry.counters
        try:
            term_defs: list = []
            pred_defs: list = []
            entries: list[tuple] = []
            for position, query in enumerate(batch):
                entries.append(
                    (
                        position,
                        tuple(
                            self._encoder.term(var, term_defs)
                            for var in query.answer_vars
                        ),
                        tuple(
                            self._encoder.atom(item, term_defs, pred_defs)
                            for item in query.atoms
                        ),
                    )
                )
            # Every worker receives the full definition broadcast (codes
            # are assigned in definition order on both ends) plus its
            # round-robin slice of the batch.
            for worker_index in range(self.workers):
                message = (
                    term_defs,
                    pred_defs,
                    entries[worker_index :: self.workers],
                )
                payload = pickle.dumps(message, _PICKLE_PROTOCOL)
                self._connections[worker_index].send_bytes(payload)
                counters["rwparallel.bytes_sent"] += len(payload)
            outcomes: list = [None] * len(batch)
            for worker_index in range(self.workers):
                raw = self._connections[worker_index].recv_bytes()
                counters["rwparallel.bytes_received"] += len(raw)
                response = pickle.loads(raw)
                if response[0] == "err":
                    raise _PoolUnavailable(f"worker raised:\n{response[1]}")
                _, out_term_defs, out_pred_defs, results, seconds = response
                decoder = self._decoders[worker_index]
                decoder.apply_defs(out_term_defs, out_pred_defs)
                counters["rwparallel.worker_us"] += int(seconds * 1_000_000)
                for position, encoded in results:
                    decoded: list[tuple] = []
                    for item in encoded:
                        if item[0] == "cq":
                            _, answer_codes, atom_codes = item
                            produced = ConjunctiveQuery(
                                tuple(
                                    decoder.term(code) for code in answer_codes
                                ),
                                tuple(decoder.atom(code) for code in atom_codes),
                            )
                            decoded.append(("cq", adopt_canonical(produced)))
                        else:
                            decoded.append(item)
                    outcomes[position] = decoded
            counters["rwparallel.batches"] += 1
            counters["rwparallel.cqs_shipped"] += len(batch)
            return outcomes
        except Exception:
            counters["rwparallel.fallback_inprocess"] = 1
            return None

    def close(self) -> None:
        """Stop the pool: polite request, then join → terminate → kill."""
        for connection in self._connections:
            try:
                connection.send_bytes(pickle.dumps(None, _PICKLE_PROTOCOL))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover — wedged worker
                process.kill()
                process.join(timeout=1.0)
            if not process.is_alive():
                try:
                    process.close()
                except ValueError:  # pragma: no cover — already closed
                    pass
        self._connections = []
        self._processes = []


def make_frontier_executor(
    theory: Theory, budget, telemetry: Telemetry
) -> FrontierExecutor | None:
    """Build the pool, or return ``None`` (with the fallback flag set).

    A ``None`` means "enumerate in-process" and is always safe:
    unpicklable theories, single-worker requests and pool start failures
    degrade here instead of raising mid-saturation.
    """
    workers = budget.workers or 0
    if workers <= 1:
        return None
    try:
        return FrontierExecutor(theory, budget, telemetry, workers)
    except _PoolUnavailable:
        telemetry.counters["rwparallel.fallback_inprocess"] = 1
        return None


__all__ = ["FrontierExecutor", "make_frontier_executor"]
