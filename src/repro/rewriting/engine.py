"""UCQ rewriting by saturation: computing ``rew(psi)`` of Theorem 1.

Breadth-first application of piece unifiers with containment-based pruning:
a newly produced CQ is kept only when no kept CQ already contains it, and it
evicts kept CQs it contains.  Every kept CQ is replaced by its core first,
so the final set is exactly the *minimal* rewriting set of Theorem 1 (up to
CQ isomorphism) whenever saturation completes.

For theories that are not BDD the saturation does not terminate; budgets
turn that into an explicit ``complete=False`` outcome, which the BDD
diagnostics of :mod:`repro.rewriting.bdd` interpret.

Fast path
---------

The loop stores every kept disjunct as its *canonical form*
(:mod:`repro.rewriting.canonical`) and prunes in three layers before any
NP-hard containment search runs:

1. **Canonical-key dedup** — the kept set is a dict keyed by the canonical
   isomorphism key, so a rewriting step that merely reproduces a kept
   disjunct with fresh variable names dies in one hash probe
   (``rewrite.dedup_hits``) instead of a homomorphism search.
2. **Subsumption indexing** — an inverted predicate → kept-key index,
   maintained incrementally.  Containment ``phi ⊒ psi`` needs a
   homomorphism ``psi → phi``, which requires ``preds(psi) ⊆ preds(phi)``;
   the drop scan therefore only visits kept CQs whose predicate set is a
   subset of the produced CQ's, and the evict scan only those whose
   predicate set is a superset (``rewrite.subsumption_skipped`` counts the
   candidates the index proved hopeless).  Atom *counts* are deliberately
   not used: a homomorphism may collapse atoms non-injectively (the core
   ``E(x,y), E(y,z)`` maps into the single atom ``E(u,u)``), so a
   size-based filter would be unsound — this is a knowing deviation from
   the issue text, which suggested one.
3. **Relevance-filtered unifiers** — a per-:class:`Theory` memoized
   head-predicate → rule index (mirroring the chase planner's prepared
   rules) restricts each frontier CQ to rules whose head shares a
   predicate with it; a piece unifier starts from an equal-predicate
   (query atom, head atom) pair, so skipped rules
   (``rewrite.rules_skipped``) provably admit none.

All three filters only skip work whose outcome is forced, so the kept set,
the frontier, and the ``rewrite.steps`` / ``rewrite.produced`` /
``rewrite.evicted`` counters are identical with ``use_indexes=False``
(the naive reference mode benches and property tests compare against).

The loop itself is batch-structured: each pass snapshots the whole
frontier, speculatively enumerates every batch member's piece-rewriting
outcomes (this part depends only on the CQ and the theory, never on the
kept set), and then *replays* the outcomes in deterministic order — batch
position, then rule index, then unifier order — applying all
kept-set-dependent logic (dedup, subsumption, eviction, budget stops,
counters) exactly as the one-CQ-at-a-time loop would.  Because
canonicalization erases fresh-variable naming history and cores are
unique up to isomorphism, the enumeration is a pure function of the
(canonical) CQ — which is what lets ``RewritingBudget(workers=N)``
ship batches to worker processes (:mod:`repro.rewriting.parallel`) and
still merge a byte-identical kept set with byte-identical ``rewrite.*``
counters.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Sequence

from ..logic.containment import core_query, is_contained_in
from ..logic.query import ConjunctiveQuery, UnionOfCQs
from ..logic.signature import Predicate
from ..logic.terms import FreshVariables, Variable
from ..logic.tgd import TGD, Theory
from ..telemetry import Telemetry
from .canonical import _EXIST_PREFIX, canonical_form, canonical_key
from .unification import EmptyRewriting, iter_piece_unifiers


@dataclass
class RewritingResult:
    """The outcome of rewriting saturation.

    ``ucq``
        The rewriting set computed so far (all of ``rew(psi)`` when
        ``complete``).  Disjuncts are canonically renamed
        (:func:`repro.rewriting.canonical.canonical_form`, presented over
        the original answer-variable names), so the set is independent of
        the fresh-variable naming history.
    ``complete``
        ``True`` when saturation reached a fixpoint within budget; only
        then is the set guaranteed to be the full rewriting.
    ``always_true``
        Set when some rewriting chain consumed the whole query against
        empty-bodied rules: the query is entailed on every instance with a
        non-empty domain (and on the empty instance too when the final rule
        had no universal variables).  Boolean-query evaluation must OR this
        flag in.
    ``explored``
        Number of rewriting steps attempted (a work measure for benches).
    ``stats``
        Saturation telemetry: ``rewrite.*`` counters (pieces unified,
        dedup hits, subsumption checks performed and skipped, evictions,
        peak queue length) and phase time; ``rwparallel.*`` counters when
        a worker pool ran.
    """

    query: ConjunctiveQuery
    theory: Theory
    ucq: UnionOfCQs
    complete: bool
    always_true: bool = False
    explored: int = 0
    stats: Telemetry = field(default_factory=Telemetry)

    def max_disjunct_size(self) -> int:
        """``rs_T(psi)``: the largest disjunct size (Section 7)."""
        return self.ucq.max_disjunct_size()


@dataclass
class RewritingBudget:
    """Resource limits for saturation (generous defaults for small inputs)."""

    max_kept: int = 2_000
    max_steps: int = 200_000
    max_disjunct_atoms: int = 64
    # Ablation switch (bench A3): skip evicting kept CQs subsumed by newly
    # produced, more general ones.  Harmless for completeness (the general
    # query still joins the set) but the kept set — and hence every later
    # containment check — grows.  NOTE: core minimization itself is *not*
    # optional: a redundant atom blocks piece unifiers (its variables leak
    # out of every piece), so skipping cores loses completeness.
    evict_subsumed: bool = True
    # Ablation switch: disable canonical-key dedup, the predicate-indexed
    # subsumption scans and rule relevance filtering.  The kept set and
    # the step/produced/evicted counters are identical either way (the
    # filters only skip provably-failing work); only the check/skip
    # accounting differs.  The bench guard measures naive-vs-indexed on
    # exactly this switch.
    use_indexes: bool = True
    # Opt-in parallel frontier batches: ship each frontier batch to N
    # worker processes (see repro/rewriting/parallel.py).  The merge is
    # deterministic, so the kept set and every rewrite.* counter are
    # byte-identical to the sequential run; pool telemetry lives under
    # rwparallel.*.  None or <=1 runs in-process.
    workers: int | None = None


# Rewriting-step outcomes: what one piece unifier did to one frontier CQ.
# The enumeration is kept-set-independent, so outcomes can be produced
# speculatively (and remotely) and replayed later in deterministic order.
_EMPTY = ("empty",)  # EmptyRewriting: the query is unconditionally true
_SKIP = ("skip",)  # an answer variable lost its last atom (see rewrite())
_OVERSIZE = ("oversize",)  # produced CQ exceeds max_disjunct_atoms


# ----------------------------------------------------------------------
# Rule relevance: head-predicate -> rule index, memoized per Theory
# ----------------------------------------------------------------------

_RULE_INDEX_CACHE: "weakref.WeakKeyDictionary[Theory, dict[Predicate, tuple[int, ...]]]"
_RULE_INDEX_CACHE = weakref.WeakKeyDictionary()


def _head_predicate_index(theory: Theory) -> dict[Predicate, tuple[int, ...]]:
    """Head predicate -> indices of rules carrying it, built once per theory."""
    cached = _RULE_INDEX_CACHE.get(theory)
    if cached is None:
        buckets: dict[Predicate, dict[int, None]] = {}
        for rule_index, rule in enumerate(theory):
            for item in rule.head:
                buckets.setdefault(item.predicate, {})[rule_index] = None
        cached = {pred: tuple(indices) for pred, indices in buckets.items()}
        _RULE_INDEX_CACHE[theory] = cached
    return cached


def _relevant_rule_indices(
    index: dict[Predicate, tuple[int, ...]], query: ConjunctiveQuery
) -> list[int]:
    """Rules whose head shares a predicate with ``query``, in theory order."""
    found: set[int] = set()
    for pred in query.predicates():
        found.update(index.get(pred, ()))
    return sorted(found)


# ----------------------------------------------------------------------
# Speculative unifier enumeration (kept-set independent, worker-safe)
# ----------------------------------------------------------------------


def unify_frontier_cq(
    query: ConjunctiveQuery,
    rules: Sequence[TGD],
    rule_indices: Sequence[int],
    max_disjunct_atoms: int,
) -> list[tuple]:
    """All rewriting-step outcomes of one frontier CQ, in canonical order.

    A pure function of ``(query, rules, rule_indices, max_disjunct_atoms)``:
    the fresh-variable supply is local (one per call) and every produced CQ
    is cored and canonicalized, so two calls — in any process — return the
    same outcome list for the same canonical query.  The engine replays
    these outcomes against the kept set later; budget stops simply discard
    the speculative tail.
    """
    fresh = FreshVariables(prefix="_rw")
    outcomes: list[tuple] = []
    for rule_index in rule_indices:
        rule = rules[rule_index]
        for unifier in iter_piece_unifiers(query, rule, fresh):
            try:
                produced = unifier.rewrite(query)
            except EmptyRewriting:
                outcomes.append(_EMPTY)
                continue
            except ValueError:
                outcomes.append(_SKIP)
                continue
            if produced.size > max_disjunct_atoms:
                outcomes.append(_OVERSIZE)
                continue
            outcomes.append(("cq", canonical_form(core_query(produced))))
    return outcomes


# ----------------------------------------------------------------------
# The kept set: canonical-key dict plus inverted predicate index
# ----------------------------------------------------------------------


class _KeptSet:
    """Kept disjuncts keyed by canonical isomorphism key.

    Each entry also records its insertion sequence number (candidate scans
    run in insertion order, like the naive list scan they replace) and its
    predicate set (the subset/superset filters).  The inverted
    predicate -> keys index is maintained incrementally on add/remove.
    """

    __slots__ = ("entries", "by_predicate", "use_indexes", "_next_seq")

    def __init__(self, use_indexes: bool) -> None:
        # key -> (seq, query, predicate frozenset)
        self.entries: dict[tuple, tuple[int, ConjunctiveQuery, frozenset]] = {}
        self.by_predicate: dict[Predicate, set[tuple]] = {}
        self.use_indexes = use_indexes
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self.entries

    def queries(self) -> list[ConjunctiveQuery]:
        return [query for _, query, _ in self.entries.values()]

    def add(self, key: tuple, query: ConjunctiveQuery) -> None:
        preds = frozenset(query.predicates())
        self.entries[key] = (self._next_seq, query, preds)
        self._next_seq += 1
        if self.use_indexes:
            for pred in preds:
                self.by_predicate.setdefault(pred, set()).add(key)

    def remove(self, key: tuple) -> None:
        _, _, preds = self.entries.pop(key)
        if self.use_indexes:
            for pred in preds:
                self.by_predicate[pred].discard(key)

    def all_entries(self) -> list[tuple[int, tuple, ConjunctiveQuery]]:
        return [
            (seq, key, query) for key, (seq, query, _) in self.entries.items()
        ]

    def drop_candidates(
        self, preds: frozenset
    ) -> list[tuple[int, tuple, ConjunctiveQuery]]:
        """Kept CQs that could *contain* a produced CQ with predicates ``preds``.

        Containment needs a homomorphism kept -> produced, hence
        ``preds(kept) ⊆ preds``: union the produced predicates' buckets,
        then keep the subset-satisfying entries, in insertion order.
        """
        seen: set[tuple] = set()
        out: list[tuple[int, tuple, ConjunctiveQuery]] = []
        for pred in preds:
            for key in self.by_predicate.get(pred, ()):
                if key in seen:
                    continue
                seen.add(key)
                seq, query, kept_preds = self.entries[key]
                if kept_preds <= preds:
                    out.append((seq, key, query))
        out.sort()
        return out

    def evict_candidates(
        self, preds: frozenset
    ) -> list[tuple[int, tuple, ConjunctiveQuery]]:
        """Kept CQs a produced CQ with predicates ``preds`` could contain.

        The homomorphism runs produced -> kept, hence
        ``preds ⊆ preds(kept)``: intersect the buckets of every produced
        predicate, in insertion order.
        """
        keys: set[tuple] | None = None
        for pred in preds:
            bucket = self.by_predicate.get(pred)
            if not bucket:
                return []
            keys = set(bucket) if keys is None else keys & bucket
            if not keys:
                return []
        out = []
        for key in keys or ():
            seq, query, _ = self.entries[key]
            out.append((seq, key, query))
        out.sort()
        return out


def _presentable(
    original: ConjunctiveQuery, canonical: ConjunctiveQuery
) -> ConjunctiveQuery:
    """A disjunct renamed for human output, caches preserved.

    The kept set stores canonical forms (variables ``_ca<i>`` /
    ``_ce<j>``); the result renames answer variables back to the original
    query's names (canonical answer labels are first-occurrence positions
    of the answer tuple, so the mapping is positional) and existential
    variables to ``_e<j>``.  The renaming is a deterministic bijection —
    sequential/parallel byte-parity and the canonical caches survive it.
    """
    renaming: dict[Variable, Variable] = {}
    answer_names: set[str] = set()
    for position, var in enumerate(canonical.answer_vars):
        if var not in renaming:
            renaming[var] = original.answer_vars[position]
            answer_names.add(original.answer_vars[position].name)
    for var in canonical.existential_vars():
        name = f"_e{var.name[len(_EXIST_PREFIX):]}"
        if name in answer_names:  # programmatic ``_e*`` answer names
            return canonical
        renaming[var] = Variable(name)
    renamed = canonical.substitute(renaming)
    object.__setattr__(renamed, "_canonical_form", canonical)
    object.__setattr__(
        renamed, "_canonical_key", canonical.__dict__["_canonical_key"]
    )
    return renamed


# ----------------------------------------------------------------------
# The saturation loop
# ----------------------------------------------------------------------


def rewrite(
    theory: Theory,
    query: ConjunctiveQuery,
    budget: RewritingBudget | None = None,
    telemetry: Telemetry | None = None,
) -> RewritingResult:
    """Saturate piece-rewriting from ``query`` under ``theory``.

    Returns the minimized UCQ rewriting.  Disjuncts whose size exceeds
    ``budget.max_disjunct_atoms`` mark the result incomplete rather than
    being explored further (they usually signal a non-BDD theory).

    One knowing deviation (documented in DESIGN.md): a rewriting step that
    would leave an *answer* variable without any atom (possible only with
    empty-bodied rules) is skipped — expressing it would need a
    domain-membership predicate outside CQ syntax.

    ``telemetry`` lets callers supply a hook-carrying collector; by default
    a fresh one is created and returned as ``RewritingResult.stats``.
    """
    budget = budget or RewritingBudget()
    telemetry = telemetry if telemetry is not None else Telemetry()
    counters = telemetry.counters
    rules = theory.rules()
    use_indexes = budget.use_indexes
    rule_index = _head_predicate_index(theory) if use_indexes else None

    start = canonical_form(core_query(query))
    kept = _KeptSet(use_indexes)
    kept.add(canonical_key(start), start)
    frontier: list[ConjunctiveQuery] = [start]
    explored = 0
    complete = True
    always_true = False
    stopped = False

    executor = None
    if budget.workers is not None and budget.workers > 1:
        from .parallel import make_frontier_executor

        executor = make_frontier_executor(theory, budget, telemetry)

    try:
        with telemetry.phase("rewrite"):
            while frontier and not stopped:
                batch = frontier
                frontier = []
                batch_outcomes: list[list[tuple]] | None = None
                if executor is not None:
                    batch_outcomes = executor.unify_batch(batch)
                    if batch_outcomes is None:  # pool failed: degrade for good
                        executor.close()
                        executor = None
                # Replay in deterministic order: batch position, then rule
                # index, then unifier order — exactly the one-at-a-time
                # sequential schedule (a deque would interleave the same
                # way: the whole batch precedes everything it produces).
                for position, current in enumerate(batch):
                    if canonical_key(current) not in kept:
                        counters["rewrite.evicted_while_queued"] += 1
                        continue
                    if use_indexes:
                        indices: Sequence[int] = _relevant_rule_indices(
                            rule_index, current
                        )
                        counters["rewrite.rules_skipped"] += len(rules) - len(
                            indices
                        )
                    else:
                        indices = range(len(rules))
                    if batch_outcomes is not None:
                        outcomes = batch_outcomes[position]
                    else:
                        outcomes = unify_frontier_cq(
                            current, rules, indices, budget.max_disjunct_atoms
                        )
                    for outcome in outcomes:
                        explored += 1
                        counters["rewrite.steps"] += 1
                        if explored > budget.max_steps:
                            complete = False
                            stopped = True
                            break
                        tag = outcome[0]
                        if tag == "empty":
                            always_true = True
                            continue
                        if tag == "skip":
                            continue
                        if tag == "oversize":
                            counters["rewrite.oversize_dropped"] += 1
                            complete = False
                            continue
                        produced = outcome[1]
                        produced_key = canonical_key(produced)
                        if use_indexes and produced_key in kept:
                            counters["rewrite.dedup_hits"] += 1
                            continue
                        produced_preds = frozenset(produced.predicates())
                        if use_indexes:
                            candidates = kept.drop_candidates(produced_preds)
                            counters["rewrite.subsumption_skipped"] += len(
                                kept
                            ) - len(candidates)
                        else:
                            candidates = kept.all_entries()
                        checks = 0
                        subsumed = False
                        for _, _, existing in candidates:
                            checks += 1
                            if is_contained_in(produced, existing):
                                subsumed = True
                                break
                        counters["rewrite.subsumption_checks"] += checks
                        if subsumed:
                            counters["rewrite.subsumed_dropped"] += 1
                            continue
                        if budget.evict_subsumed:
                            if use_indexes:
                                victims = kept.evict_candidates(produced_preds)
                                counters["rewrite.subsumption_skipped"] += len(
                                    kept
                                ) - len(victims)
                            else:
                                victims = kept.all_entries()
                            counters["rewrite.subsumption_checks"] += len(victims)
                            evicted = 0
                            for _, victim_key, existing in victims:
                                if is_contained_in(existing, produced):
                                    kept.remove(victim_key)
                                    evicted += 1
                            counters["rewrite.evicted"] += evicted
                        kept.add(produced_key, produced)
                        counters["rewrite.produced"] += 1
                        frontier.append(produced)
                        telemetry.gauge_max(
                            "rewrite.queue_peak",
                            len(frontier) + len(batch) - position - 1,
                        )
                        if len(kept) > budget.max_kept:
                            complete = False
                            stopped = True
                            break
                    if stopped:
                        break
    finally:
        if executor is not None:
            executor.close()

    counters["rewrite.kept"] = len(kept)
    disjuncts = [_presentable(query, entry) for entry in kept.queries()]
    return RewritingResult(
        query=query,
        theory=theory,
        ucq=UnionOfCQs(disjuncts, name=f"rew({query!r})"),
        complete=complete,
        always_true=always_true,
        explored=explored,
        stats=telemetry,
    )


def rewriting_size(
    theory: Theory, query: ConjunctiveQuery, budget: RewritingBudget | None = None
) -> int:
    """``rs_T(psi)`` — the maximal disjunct size of the rewriting.

    Raises when saturation did not complete (the measure would be a lie).
    """
    result = rewrite(theory, query, budget)
    if not result.complete:
        raise RuntimeError("rewriting did not complete within budget")
    return result.max_disjunct_size()


def atomic_rewriting_sizes(
    theory: Theory, budget: RewritingBudget | None = None
) -> dict[str, int]:
    """``rs^at_T`` per predicate: rewriting sizes of all atomic queries.

    Builds, for every predicate of the theory, the atomic query with
    pairwise-distinct answer variables, and rewrites it.
    """
    from ..logic.atoms import Atom
    from ..logic.terms import Variable

    sizes: dict[str, int] = {}
    for predicate in sorted(theory.predicates(), key=lambda p: p.name):
        variables = tuple(Variable(f"y{i}") for i in range(predicate.arity))
        atomic = ConjunctiveQuery(variables, (Atom(predicate, variables),))
        sizes[predicate.name] = rewriting_size(theory, atomic, budget)
    return sizes
