"""UCQ rewriting by saturation: computing ``rew(psi)`` of Theorem 1.

Breadth-first application of piece unifiers with containment-based pruning:
a newly produced CQ is kept only when no kept CQ already contains it, and it
evicts kept CQs it contains.  Every kept CQ is replaced by its core first,
so the final set is exactly the *minimal* rewriting set of Theorem 1 (up to
CQ isomorphism) whenever saturation completes.

For theories that are not BDD the saturation does not terminate; budgets
turn that into an explicit ``complete=False`` outcome, which the BDD
diagnostics of :mod:`repro.rewriting.bdd` interpret.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..logic.containment import core_query, is_contained_in
from ..logic.query import ConjunctiveQuery, UnionOfCQs
from ..logic.terms import FreshVariables
from ..logic.tgd import Theory
from ..telemetry import Telemetry
from .unification import EmptyRewriting, iter_piece_unifiers


@dataclass
class RewritingResult:
    """The outcome of rewriting saturation.

    ``ucq``
        The rewriting set computed so far (all of ``rew(psi)`` when
        ``complete``).
    ``complete``
        ``True`` when saturation reached a fixpoint within budget; only
        then is the set guaranteed to be the full rewriting.
    ``always_true``
        Set when some rewriting chain consumed the whole query against
        empty-bodied rules: the query is entailed on every instance with a
        non-empty domain (and on the empty instance too when the final rule
        had no universal variables).  Boolean-query evaluation must OR this
        flag in.
    ``explored``
        Number of rewriting steps attempted (a work measure for benches).
    ``stats``
        Saturation telemetry: ``rewrite.*`` counters (pieces unified,
        subsumption checks, evictions, peak queue length) and phase time.
    """

    query: ConjunctiveQuery
    theory: Theory
    ucq: UnionOfCQs
    complete: bool
    always_true: bool = False
    explored: int = 0
    stats: Telemetry = field(default_factory=Telemetry)

    def max_disjunct_size(self) -> int:
        """``rs_T(psi)``: the largest disjunct size (Section 7)."""
        return self.ucq.max_disjunct_size()


@dataclass
class RewritingBudget:
    """Resource limits for saturation (generous defaults for small inputs)."""

    max_kept: int = 2_000
    max_steps: int = 200_000
    max_disjunct_atoms: int = 64
    # Ablation switch (bench A3): skip evicting kept CQs subsumed by newly
    # produced, more general ones.  Harmless for completeness (the general
    # query still joins the set) but the kept set — and hence every later
    # containment check — grows.  NOTE: core minimization itself is *not*
    # optional: a redundant atom blocks piece unifiers (its variables leak
    # out of every piece), so skipping cores loses completeness.
    evict_subsumed: bool = True


def rewrite(
    theory: Theory,
    query: ConjunctiveQuery,
    budget: RewritingBudget | None = None,
    telemetry: Telemetry | None = None,
) -> RewritingResult:
    """Saturate piece-rewriting from ``query`` under ``theory``.

    Returns the minimized UCQ rewriting.  Disjuncts whose size exceeds
    ``budget.max_disjunct_atoms`` mark the result incomplete rather than
    being explored further (they usually signal a non-BDD theory).

    One knowing deviation (documented in DESIGN.md): a rewriting step that
    would leave an *answer* variable without any atom (possible only with
    empty-bodied rules) is skipped — expressing it would need a
    domain-membership predicate outside CQ syntax.

    ``telemetry`` lets callers supply a hook-carrying collector; by default
    a fresh one is created and returned as ``RewritingResult.stats``.
    """
    budget = budget or RewritingBudget()
    telemetry = telemetry if telemetry is not None else Telemetry()
    counters = telemetry.counters
    fresh = FreshVariables(prefix="_rw")
    start = core_query(query)
    kept: list[ConjunctiveQuery] = [start]
    frontier: deque[ConjunctiveQuery] = deque([start])
    explored = 0
    complete = True
    always_true = False

    with telemetry.phase("rewrite"):
        while frontier:
            current = frontier.popleft()
            if current not in kept:
                counters["rewrite.evicted_while_queued"] += 1
                continue  # evicted while queued
            for rule in theory:
                for unifier in iter_piece_unifiers(current, rule, fresh):
                    explored += 1
                    counters["rewrite.steps"] += 1
                    if explored > budget.max_steps:
                        complete = False
                        frontier.clear()
                        break
                    try:
                        produced = unifier.rewrite(current)
                    except EmptyRewriting:
                        always_true = True
                        continue
                    except ValueError:
                        # An answer variable lost its last atom; see docstring.
                        continue
                    if produced.size > budget.max_disjunct_atoms:
                        counters["rewrite.oversize_dropped"] += 1
                        complete = False
                        continue
                    produced = core_query(produced)
                    counters["rewrite.subsumption_checks"] += len(kept)
                    if any(is_contained_in(produced, existing) for existing in kept):
                        counters["rewrite.subsumed_dropped"] += 1
                        continue
                    if budget.evict_subsumed:
                        counters["rewrite.subsumption_checks"] += len(kept)
                        survivors = [
                            existing
                            for existing in kept
                            if not is_contained_in(existing, produced)
                        ]
                        counters["rewrite.evicted"] += len(kept) - len(survivors)
                        kept = survivors
                    kept.append(produced)
                    counters["rewrite.produced"] += 1
                    frontier.append(produced)
                    telemetry.gauge_max("rewrite.queue_peak", len(frontier))
                    if len(kept) > budget.max_kept:
                        complete = False
                        frontier.clear()
                        break
                else:
                    continue
                break

    counters["rewrite.kept"] = len(kept)
    return RewritingResult(
        query=query,
        theory=theory,
        ucq=UnionOfCQs(kept, name=f"rew({query!r})"),
        complete=complete,
        always_true=always_true,
        explored=explored,
        stats=telemetry,
    )


def rewriting_size(
    theory: Theory, query: ConjunctiveQuery, budget: RewritingBudget | None = None
) -> int:
    """``rs_T(psi)`` — the maximal disjunct size of the rewriting.

    Raises when saturation did not complete (the measure would be a lie).
    """
    result = rewrite(theory, query, budget)
    if not result.complete:
        raise RuntimeError("rewriting did not complete within budget")
    return result.max_disjunct_size()


def atomic_rewriting_sizes(
    theory: Theory, budget: RewritingBudget | None = None
) -> dict[str, int]:
    """``rs^at_T`` per predicate: rewriting sizes of all atomic queries.

    Builds, for every predicate of the theory, the atomic query with
    pairwise-distinct answer variables, and rewrites it.
    """
    from ..logic.atoms import Atom
    from ..logic.terms import Variable

    sizes: dict[str, int] = {}
    for predicate in sorted(theory.predicates(), key=lambda p: p.name):
        variables = tuple(Variable(f"y{i}") for i in range(predicate.arity))
        atomic = ConjunctiveQuery(variables, (Atom(predicate, variables),))
        sizes[predicate.name] = rewriting_size(theory, atomic, budget)
    return sizes
