"""Prepared OMQA sessions: cache rewritings per query shape, chases per
instance.

The realistic deployment mode of ontology-mediated query answering pays
its big costs once: the UCQ rewriting once per *query shape* (it is
database-independent, Theorem 1) and the materialized chase once per
*database* (it is query-independent).  :class:`OMQASession` is the facade
that owns both caches, replacing the ad-hoc ``prepared=`` threading of
:mod:`repro.rewriting.answering` for callers that answer more than one
query.

Cache keys:

* **query shape** — the query canonicalized by renaming variables in
  first-occurrence order (answer variables first), so alpha-equivalent
  queries with identical atom order share one prepared rewriting;
* **instance content** — the frozenset of facts, so two instances with
  the same atoms share one materialization (content hashing costs O(n)
  per lookup; for repeated answering over a handle the caller keeps, that
  is the safe trade);
* **compiled SQL** — with ``strategy="sql"`` the session keeps a
  :class:`~repro.storage.sqlite.SQLiteStore` (at ``db_path``, or
  in-memory) and caches each shape's rewriting *compiled to SQL*, keyed
  by :func:`repro.logic.serialize.dump_query` of the canonical shape.
  Reloading a different instance clears the compiled cache (compilation
  prunes disjuncts against the store's predicates and constants) but
  keeps the term dictionary and tables.  With ``strategy="columnar"``
  the session keeps a content-keyed
  :class:`~repro.storage.columnar.ColumnarStore` the same way (term
  dictionary survives reloads; interning is append-only).
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..chase.engine import (
    CancellationToken,
    ChaseBudget,
    ChaseBudgetExceeded,
    ChaseCancelled,
    ChaseResult,
    chase,
)
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Term, Variable
from ..logic.tgd import Theory
from ..telemetry import Telemetry
from .answering import answer_by_materialization, answer_by_rewriting
from .engine import RewritingBudget, RewritingResult, rewrite


def query_shape(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Canonicalize a query up to variable renaming (stable atom order).

    Variables are renamed ``_s0, _s1, ...`` in order of first occurrence,
    answer variables first — the session's cache key.
    """
    renaming: dict[Variable, Variable] = {}

    def canonical(var: Variable) -> Variable:
        if var not in renaming:
            renaming[var] = Variable(f"_s{len(renaming)}")
        return renaming[var]

    for var in query.answer_vars:
        canonical(var)
    for item in query.atoms:
        for term in item.args:
            if isinstance(term, Variable):
                canonical(term)
    return query.substitute(renaming)


class OMQASession:
    """A prepared query-answering session over one theory.

    ``answer()`` picks the route: the cached rewriting when it is
    complete, otherwise a cached fixpoint materialization (raising like
    :func:`repro.rewriting.answering.certain_answers` when neither route
    is conclusive).  ``stats`` aggregates the telemetry of every engine
    run the session triggered; ``cache_info()`` reports hits/misses.

    Sessions are **thread-safe**: one reentrant per-session lock guards
    every cache mutation (``prepare``/``materialize``/``compile_sql``/
    the store loaders/live updates), so a threadpool — the service's
    deployment shape, see :mod:`repro.service` — may call ``answer()``
    concurrently without corrupting the cache dicts.  Holding the lock
    *through* a compile makes first requests single-flight: two threads
    racing to prepare the same query shape run one rewriting, and the
    loser's wait is counted as a ``session.rewrite_cache_hits`` hit.
    Engine work under the lock serializes sessions' CPU-bound phases,
    which costs nothing under the GIL; scale-out reads belong on
    separate store connections (WAL), not on extra session locks.
    """

    def __init__(
        self,
        theory: Theory,
        rewriting_budget: RewritingBudget | None = None,
        chase_budget: ChaseBudget | None = None,
        workers: int | None = None,
        db_path: "str | None" = None,
        cancel: "CancellationToken | None" = None,
    ) -> None:
        self.theory = theory
        self.rewriting_budget = rewriting_budget
        self.chase_budget = chase_budget or ChaseBudget(
            max_rounds=100, max_atoms=500_000
        )
        # Cooperative cancellation: every chase the session triggers
        # watches this token (the CLI's SIGINT handler fires it), so a
        # long materialization stops at the next check, not at the end.
        self.cancel = cancel
        # Round-executor process count for materializations; ``None``
        # defers to ``chase_budget.workers``.  Chase results are
        # executor-independent (see repro.chase.parallel), so cached
        # materializations stay valid whatever the count.
        self.workers = workers
        # Where strategy="sql" keeps its SQLiteStore; None = in-memory.
        self.db_path = db_path
        self.stats = Telemetry()
        # One reentrant lock for every cache the session owns.  RLock,
        # not Lock: answer() holds it across a store load + evaluation
        # while the loaders and prepare() re-acquire it underneath.
        self._lock = threading.RLock()
        self._rewritings: dict[ConjunctiveQuery, RewritingResult] = {}
        self._chases: dict[frozenset, ChaseResult] = {}
        self._sql_store = None
        self._sql_digest: "str | None" = None
        self._compiled_sql: dict = {}
        self._columnar_store = None
        self._columnar_digest: "str | None" = None
        self._hits = {"rewriting": 0, "chase": 0, "sql": 0, "columnar": 0}
        self._misses = {"rewriting": 0, "chase": 0, "sql": 0, "columnar": 0}

    # ------------------------------------------------------------------
    # Prepared artifacts
    # ------------------------------------------------------------------
    def prepare(self, query: ConjunctiveQuery) -> RewritingResult:
        """The (cached) UCQ rewriting for this query's shape.

        Note the result's ``query``/``ucq`` are phrased over the canonical
        shape variables; ``answer()`` evaluates via the shape, so answer
        tuples are unaffected.
        """
        shape = query_shape(query)
        with self._lock:
            cached = self._rewritings.get(shape)
            if cached is not None:
                self._hits["rewriting"] += 1
                # Mirrored into telemetry so ``--stats`` output (and any
                # service wrapping the session) can observe per-shape
                # rewriting amortization without calling cache_info().
                self.stats.counters["session.rewrite_cache_hits"] += 1
                return cached
            self._misses["rewriting"] += 1
            self.stats.counters["session.rewrite_cache_misses"] += 1
            # Still under the lock: concurrent first requests for one
            # shape are single-flight — one compile, the rest hit.
            result = rewrite(self.theory, shape, self.rewriting_budget)
            self.stats.merge(result.stats)
            self._rewritings[shape] = result
            return result

    def materialize(self, instance: Instance) -> ChaseResult:
        """The (cached) fixpoint chase of this instance's content.

        Raises :class:`ChaseBudgetExceeded` when the chase does not reach
        a fixpoint within the session's chase budget — a non-terminating
        materialization must stay loud, not cached as truncated.
        """
        key = instance.atoms()
        with self._lock:
            cached = self._chases.get(key)
            if cached is not None:
                self._hits["chase"] += 1
                # Mirrored like ``session.rewrite_cache_*`` in prepare():
                # the key is the instance *content*, so a mutated-then-
                # restored instance hits here — observable via --stats.
                self.stats.counters["session.chase_cache_hits"] += 1
                return cached
            self._misses["chase"] += 1
            self.stats.counters["session.chase_cache_misses"] += 1
            result = chase(
                self.theory,
                instance,
                budget=self.chase_budget,
                workers=self.workers,
                cancel=self.cancel,
            )
            self.stats.merge(result.stats)
            if not result.terminated:
                if self.cancel is not None and self.cancel.cancelled:
                    raise ChaseCancelled(
                        "materialization cancelled before reaching a fixpoint"
                    )
                raise ChaseBudgetExceeded(
                    f"chase did not reach a fixpoint within {self.chase_budget}; "
                    "answer via a complete rewriting or raise the session's budget"
                )
            self._chases[key] = result
            return result

    # ------------------------------------------------------------------
    # Live updates (incremental maintenance)
    # ------------------------------------------------------------------
    def add_facts(self, instance: Instance, facts: Iterable) -> Instance:
        """A new instance with ``facts`` added, its chase maintained live.

        Returns the updated :class:`~repro.logic.instance.Instance`
        (the input is never mutated — session cache keys are content-
        based, so callers keep both handles usable).  When the session
        holds a terminated materialization of ``instance``, the cached
        fixpoint is *maintained* via
        :func:`repro.incremental.incremental_update` — a semi-naive
        delta round over the added facts — and cached under the updated
        content key, so the next ``answer()`` against the updated
        instance pays no chase at all.  The SQL/columnar store caches
        stay digest-keyed: they reload lazily, and only when the
        instance content actually changed.
        """
        return self._update(instance, add=facts)

    def retract_facts(self, instance: Instance, facts: Iterable) -> Instance:
        """A new instance with ``facts`` removed, its chase maintained live.

        The cached fixpoint (when present and terminated) is maintained
        DRed-style: the retracted facts' derivation cone is over-deleted
        and survivors are re-derived — see :mod:`repro.incremental` for
        the exact model, including the refusal (``ValueError``) for
        theories with universal head variables.
        """
        return self._update(instance, retract=facts)

    def _update(
        self, instance: Instance, add: Iterable = (), retract: Iterable = ()
    ) -> Instance:
        from ..incremental import incremental_update

        add = frozenset(add)
        retract = frozenset(retract)
        updated = instance.copy()
        for item in retract:
            updated.discard(item)
        for item in add:
            updated.add(item)
        new_key = updated.atoms()
        with self._lock:
            cached = self._chases.get(instance.atoms())
            if (
                cached is not None
                and cached.terminated
                and new_key not in self._chases
            ):
                outcome = incremental_update(
                    cached,
                    add=add,
                    retract=retract,
                    budget=self.chase_budget,
                    cancel=self.cancel,
                )
                # Merge only the maintenance work: the original chase's
                # telemetry already landed in ``stats`` when it ran.
                self.stats.merge(outcome.stats)
                if outcome.result.terminated:
                    self._chases[new_key] = outcome.result
        return updated

    def store(self):
        """The session's :class:`~repro.storage.sqlite.SQLiteStore`.

        Created lazily (at ``db_path``, or in-memory) and wired to the
        session's telemetry, so ``store.*`` counters land in ``stats``.
        """
        with self._lock:
            if self._sql_store is None:
                from ..storage.sqlite import SQLiteStore

                self._sql_store = SQLiteStore(
                    self.db_path if self.db_path is not None else ":memory:",
                    telemetry=self.stats,
                )
            return self._sql_store

    def _loaded_store(self, instance: Instance):
        """The session store holding exactly ``instance``'s facts.

        Content-keyed like :meth:`materialize`: a reload happens only
        when the digest changes, and it invalidates the compiled-SQL
        cache (compilation prunes against the store's predicate tables
        and interned constants, which a new instance may extend).
        """
        from ..storage.base import instance_digest

        with self._lock:
            store = self.store()
            digest = instance_digest(instance)
            if digest != self._sql_digest:
                store.clear_facts()
                store.add_many(instance)
                self._compiled_sql.clear()
                self._sql_digest = digest
            return store

    def _loaded_columnar(self, instance: Instance):
        """The session's :class:`~repro.storage.columnar.ColumnarStore`
        holding exactly ``instance``'s facts.

        Content-keyed like :meth:`_loaded_store`; a reload keeps the term
        dictionary (interning is append-only) and only repopulates the
        per-predicate tuple stores.
        """
        from ..storage.base import instance_digest
        from ..storage.columnar import ColumnarStore

        with self._lock:
            if self._columnar_store is None:
                self._columnar_store = ColumnarStore(telemetry=self.stats)
            digest = instance_digest(instance)
            if digest != self._columnar_digest:
                self._misses["columnar"] += 1
                self._columnar_store.clear_facts()
                self._columnar_store.add_many(instance)
                self._columnar_digest = digest
            else:
                self._hits["columnar"] += 1
            return self._columnar_store

    def compile_sql(self, query: ConjunctiveQuery, instance: Instance):
        """The (cached) SQL compilation of this shape's rewriting.

        The cache key is :func:`~repro.logic.serialize.dump_query` of the
        canonical shape — the serialization satellite exists so this key
        is stable text, not object identity.  Raises when the rewriting
        is incomplete (there is nothing sound to compile).
        """
        from ..logic.serialize import dump_query
        from ..storage.sqlcompile import compile_ucq

        with self._lock:
            prepared = self.prepare(query)
            if not prepared.complete:
                raise RuntimeError("rewriting incomplete; cannot answer soundly")
            store = self._loaded_store(instance)
            key = dump_query(query_shape(query))
            cached = self._compiled_sql.get(key)
            if cached is not None:
                self._hits["sql"] += 1
                return cached
            self._misses["sql"] += 1
            compiled = compile_ucq(prepared.ucq, store)
            self._compiled_sql[key] = compiled
            return compiled

    # ------------------------------------------------------------------
    # Answering
    # ------------------------------------------------------------------
    def answer(
        self,
        query: ConjunctiveQuery,
        instance: Instance,
        strategy: str = "auto",
    ) -> set[tuple[Term, ...]]:
        """Certain answers using the session's prepared artifacts.

        ``strategy``: ``'rewrite'`` forces the rewriting route (raises on
        an incomplete rewriting), ``'materialize'`` forces the chase
        route, ``'sql'`` evaluates the compiled rewriting inside the
        session's SQLite store (same answers as ``'rewrite'``, pinned by
        the equivalence tests), ``'columnar'`` evaluates the rewriting as
        hash joins over the session's interned-id
        :class:`~repro.storage.columnar.ColumnarStore` (falling back to
        the cached materialization when the rewriting is incomplete),
        ``'auto'`` prefers a complete rewriting and falls back to
        materialization.

        .. versionadded:: 1.2
            The ``'columnar'`` strategy; the name matches the chase/
            answer backend resolved by :func:`repro.storage.resolve_backend`.
        """
        if strategy not in ("auto", "rewrite", "materialize", "sql", "columnar"):
            raise ValueError(
                "strategy must be 'auto', 'rewrite', 'materialize', 'sql' "
                "or 'columnar'"
            )
        shape = query_shape(query)
        if strategy == "columnar":
            from ..chase.columnar_kernel import evaluate_ucq_columnar

            # Lock across load + evaluate: the session owns one shared
            # columnar store, and another thread answering a different
            # instance would repopulate it mid-join otherwise.
            with self._lock:
                prepared = self.prepare(query)
                if prepared.complete:
                    store = self._loaded_columnar(instance)
                    answers = evaluate_ucq_columnar(prepared.ucq, store)
                    if (
                        prepared.always_true
                        and query.is_boolean()
                        and len(instance)
                    ):
                        answers.add(())
                    return answers
                materialized = self.materialize(instance)
                store = self._loaded_columnar(materialized.instance)
                answers = evaluate_ucq_columnar(shape, store)
            domain = instance.domain()
            return {
                tup for tup in answers if all(term in domain for term in tup)
            }
        if strategy == "sql":
            from ..storage.sqlcompile import execute_compiled

            # Same shared-store discipline as 'columnar': the compiled
            # plan is only valid against the store state it was compiled
            # for, so the load + execute pair must not interleave with a
            # concurrent reload.
            with self._lock:
                prepared = self.prepare(query)
                compiled = self.compile_sql(query, instance)
                answers = execute_compiled(compiled, self.store())
                if prepared.always_true and query.is_boolean() and len(instance):
                    answers.add(())
                return answers
        if strategy in ("auto", "rewrite"):
            prepared = self.prepare(query)
            if prepared.complete:
                return answer_by_rewriting(
                    self.theory, shape, instance, prepared=prepared
                )
            if strategy == "rewrite":
                raise RuntimeError("rewriting incomplete; cannot answer soundly")
        materialized = self.materialize(instance)
        return answer_by_materialization(
            self.theory, shape, instance, prepared=materialized
        )

    def answer_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        instance: Instance,
        strategy: str = "auto",
    ) -> list[set[tuple[Term, ...]]]:
        """Answer a batch of queries over one instance, caches shared."""
        return [self.answer(query, instance, strategy) for query in queries]

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                "rewriting": {
                    "hits": self._hits["rewriting"],
                    "misses": self._misses["rewriting"],
                    "entries": len(self._rewritings),
                },
                "chase": {
                    "hits": self._hits["chase"],
                    "misses": self._misses["chase"],
                    "entries": len(self._chases),
                },
                "sql": {
                    "hits": self._hits["sql"],
                    "misses": self._misses["sql"],
                    "entries": len(self._compiled_sql),
                },
                "columnar": {
                    "hits": self._hits["columnar"],
                    "misses": self._misses["columnar"],
                    "entries": 1 if self._columnar_digest is not None else 0,
                },
            }

    def clear(self) -> None:
        """Drop every cached artifact (budgets and stats survive)."""
        with self._lock:
            self._rewritings.clear()
            self._chases.clear()
            self._compiled_sql.clear()
            self._sql_digest = None
            if self._sql_store is not None:
                self._sql_store.clear_facts()
            self._columnar_digest = None
            if self._columnar_store is not None:
                self._columnar_store.clear_facts()

    def close(self) -> None:
        """Release the stores (idempotent; caches stay usable in RAM)."""
        with self._lock:
            if self._sql_store is not None:
                self._sql_store.close()
                self._sql_store = None
                self._sql_digest = None
                self._compiled_sql.clear()
            if self._columnar_store is not None:
                self._columnar_store.close()
                self._columnar_store = None
                self._columnar_digest = None

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"OMQASession({self.theory!r}, "
            f"{info['rewriting']['entries']} rewritings, "
            f"{info['chase']['entries']} chases)"
        )
