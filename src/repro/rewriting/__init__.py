"""UCQ rewriting: piece unifiers, saturation, BDD diagnostics, answering."""

from .answering import (
    AgreementReport,
    answer,
    answer_by_materialization,
    answer_by_rewriting,
    answer_by_rewriting_sql,
    certain_answers,
    cross_validate,
)
from .bdd import (
    BddVerdict,
    answer_depth_profile,
    depth_bound_from_rewriting,
    enough,
    probe_bdd,
)
from .canonical import canonical_form, canonical_key
from .engine import (
    RewritingBudget,
    RewritingResult,
    atomic_rewriting_sizes,
    rewrite,
    rewriting_size,
)
from .session import OMQASession, query_shape
from .unification import EmptyRewriting, PieceUnifier, iter_piece_unifiers

__all__ = [
    "AgreementReport",
    "BddVerdict",
    "EmptyRewriting",
    "OMQASession",
    "PieceUnifier",
    "RewritingBudget",
    "RewritingResult",
    "answer",
    "answer_by_materialization",
    "answer_by_rewriting",
    "answer_by_rewriting_sql",
    "answer_depth_profile",
    "atomic_rewriting_sizes",
    "canonical_form",
    "canonical_key",
    "certain_answers",
    "cross_validate",
    "depth_bound_from_rewriting",
    "enough",
    "iter_piece_unifiers",
    "probe_bdd",
    "query_shape",
    "rewrite",
    "rewriting_size",
]
