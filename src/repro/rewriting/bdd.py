"""BDD (Bounded Derivation Depth) diagnostics — Section 4 made executable.

``Enough(n, phi, D, T)`` (the paper's shorthand) and the two derived
semi-decision procedures:

* a **positive** certificate: complete rewriting saturation implies BDD for
  the query at hand, and the chase depth at which each disjunct's canonical
  database entails the query bounds ``n_phi``;
* a **negative** probe: exhibiting instances where answers keep arriving at
  unboundedly growing depths (used for Example 41 and Exercise 46).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..chase.engine import ChaseBudget, chase
from ..logic.homomorphism import evaluate
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Term
from ..logic.tgd import Theory
from .engine import RewritingBudget, RewritingResult, rewrite


def enough(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    depth: int,
    probe_depth: int,
    max_atoms: int = 200_000,
) -> bool:
    """``Enough(depth, query, instance, theory)`` up to ``probe_depth``.

    True when the answers over ``Ch_depth`` already equal the answers over
    ``Ch_probe_depth`` **restricted to base-domain tuples** (the paper's
    ``Enough`` quantifies over tuples from ``dom(D)``).  This is a sound
    check relative to the probe horizon: a deeper chase could still reveal
    a difference, which is exactly the semi-decidability the paper works
    around.
    """
    if probe_depth < depth:
        raise ValueError("probe_depth must be at least depth")
    result = chase(theory, instance, budget=ChaseBudget(max_rounds=probe_depth, max_atoms=max_atoms))
    base_domain = instance.domain()

    def base_answers(structure: Instance) -> set[tuple[Term, ...]]:
        return {
            answer
            for answer in evaluate(query, structure)
            if all(term in base_domain for term in answer)
        }

    return base_answers(result.prefix(depth)) == base_answers(result.instance)


def depth_bound_from_rewriting(
    theory: Theory,
    query: ConjunctiveQuery,
    budget: RewritingBudget | None = None,
    max_depth: int = 30,
) -> int:
    """An ``n_phi`` witness for Definition 11, computed from the rewriting.

    For each disjunct of the (complete) rewriting, chase its canonical
    instance until the original query holds on that chase with the
    disjunct's answer variables as the answer; the max depth over disjuncts
    is a valid uniform bound (whenever the query holds at all, one disjunct
    holds in ``D``, and replaying its canonical derivation inside
    ``Ch(T, D)`` lands within that many rounds).
    """
    result = rewrite(theory, query, budget)
    if not result.complete:
        raise RuntimeError("rewriting incomplete; no depth bound certified")
    worst = 0
    from ..logic.homomorphism import holds

    for disjunct in result.ucq:
        canonical = disjunct.canonical_instance()
        run = chase(theory, canonical, budget=ChaseBudget(max_rounds=max_depth))
        found = None
        for depth in range(len(run.round_added)):
            if holds(query, run.prefix(depth), disjunct.answer_vars):
                found = depth
                break
        if found is None:
            raise RuntimeError(
                f"disjunct {disjunct!r} did not re-derive the query within "
                f"{max_depth} rounds — increase max_depth"
            )
        worst = max(worst, found)
    return worst


@dataclass
class BddVerdict:
    """Outcome of a budgeted BDD probe for one query."""

    query: ConjunctiveQuery
    rewriting: RewritingResult
    depth_bound: int | None

    @property
    def certified_bdd(self) -> bool:
        return self.rewriting.complete


def probe_bdd(
    theory: Theory,
    query: ConjunctiveQuery,
    budget: RewritingBudget | None = None,
) -> BddVerdict:
    """Rewrite a query and, on success, certify its depth bound."""
    result = rewrite(theory, query, budget)
    depth_bound: int | None = None
    if result.complete:
        depth_bound = depth_bound_from_rewriting(theory, query, budget)
    return BddVerdict(query=query, rewriting=result, depth_bound=depth_bound)


def answer_depth_profile(
    theory: Theory,
    query: ConjunctiveQuery,
    instances: Iterable[Instance],
    probe_depth: int,
    max_atoms: int = 200_000,
) -> list[int]:
    """For each instance: the first chase depth at which any base-domain
    answer appears (or -1 when none within the probe horizon).

    A BDD theory keeps this profile bounded across any instance family
    (Definition 11); an unbounded profile refutes BDD — the shape checked
    for Example 41 and Exercise 46 in the benchmarks.
    """
    profile: list[int] = []
    for instance in instances:
        result = chase(theory, instance, budget=ChaseBudget(max_rounds=probe_depth, max_atoms=max_atoms))
        base_domain = instance.domain()
        first = -1
        for depth in range(len(result.round_added)):
            answers = {
                answer
                for answer in evaluate(query, result.prefix(depth))
                if all(term in base_domain for term in answer)
            }
            if answers:
                first = depth
                break
        profile.append(first)
    return profile
