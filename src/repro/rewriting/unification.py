"""Piece unification: the single rewriting step behind Theorem 1.

A *piece unifier* between a CQ ``q`` and a (renamed-apart) rule ``rho``
chooses a non-empty subset ``Q'`` of ``q``'s atoms, maps each to a head atom
of ``rho`` with the same predicate, and unifies argument-wise, subject to the
classical safety conditions on existential variables:

* a unification class containing an existential head variable must not
  contain a constant, an answer variable, a *different* existential
  variable, or a query variable that also occurs in ``q \\ Q'`` — such a
  variable would leak a chase-invented term out of the piece;
* answer variables behave like constants (they may absorb frontier
  variables but never merge with each other or with constants).

When a candidate class is "polluted" only by query variables occurring
outside the piece, the piece is *extended* to swallow the offending atoms
(the aggregation step of the XRewrite/König-et-al. algorithms); extension
branches over which head atom each offending atom maps to.

The resulting rewriting step replaces ``Q'`` by the rule body under the
unifier.  Iterating to saturation yields ``rew(psi)``
(:mod:`repro.rewriting.engine`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..logic.atoms import Atom
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Constant, FreshVariables, Term, Variable
from ..logic.tgd import TGD


class _UnionFind:
    """Union-find over terms, with per-class metadata checks done later."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        # Iterative two-pass find: recursion here could exhaust the stack
        # on the long parent chains large unification classes build up.
        parent = self._parent
        root = parent.setdefault(term, term)
        while parent[root] != root:
            root = parent[root]
        while parent[term] != root:
            parent[term], term = root, parent[term]
        return root

    def union(self, first: Term, second: Term) -> None:
        self._parent[self.find(first)] = self.find(second)

    def classes(self) -> dict[Term, set[Term]]:
        grouped: dict[Term, set[Term]] = {}
        for term in list(self._parent):
            grouped.setdefault(self.find(term), set()).add(term)
        return grouped


@dataclass(frozen=True)
class PieceUnifier:
    """A validated piece unifier, ready to be applied.

    ``piece`` is the set of query atoms consumed; ``substitution`` maps
    query and rule variables to class representatives.
    """

    rule: TGD
    piece: frozenset[Atom]
    substitution: dict[Variable, Term]

    def rewrite(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """Apply the rewriting step: replace the piece by the rule body.

        The substitution is applied to the answer tuple as well: when the
        unifier merges two answer variables the produced disjunct repeats
        the representative (``q(v, v)``-style answers).
        """
        kept = tuple(
            item.substitute(self.substitution)
            for item in query.atoms
            if item not in self.piece
        )
        body = tuple(item.substitute(self.substitution) for item in self.rule.body)
        new_atoms = tuple(dict.fromkeys(kept + body))
        if not new_atoms:
            # The whole query was absorbed and the rule body is empty (a
            # (loop)/(pins)-style rule): represent "true" by the rule body
            # being vacuous — callers treat this as an always-true disjunct.
            raise EmptyRewriting(self)
        new_answers = tuple(
            self.substitution.get(var, var) for var in query.answer_vars
        )
        answer_images = [
            var for var in new_answers if isinstance(var, Variable)
        ]
        if len(answer_images) != len(new_answers):
            raise AssertionError("answer variable substituted by a non-variable")
        return ConjunctiveQuery(tuple(answer_images), new_atoms)


class EmptyRewriting(Exception):
    """A rewriting step consumed the entire query against an empty body.

    This means the original query is entailed by the theory on *any*
    instance whose domain covers the substituted universal variables; the
    engine treats it as an unconditional "true" disjunct for boolean
    queries.
    """

    def __init__(self, unifier: PieceUnifier) -> None:
        super().__init__("rewriting step produced an empty query")
        self.unifier = unifier


def _validated(
    rule: TGD,
    query: ConjunctiveQuery,
    piece: dict[Atom, Atom],
    uf: _UnionFind,
) -> "PieceUnifier | set[Variable] | None":
    """Check class safety for the current piece.

    Returns a :class:`PieceUnifier` when valid, a set of query variables
    whose atoms must be swallowed into the piece when extension could help,
    or ``None`` when the unification is hopeless.
    """
    existential = rule.existential
    rule_vars = rule.variables()
    answer_vars = set(query.answer_vars)
    outside_atoms = [item for item in query.atoms if item not in piece]
    outside_vars: set[Variable] = set()
    for item in outside_atoms:
        outside_vars.update(item.variable_set())

    must_swallow: set[Variable] = set()
    for root, members in uf.classes().items():
        constants = {term for term in members if isinstance(term, Constant)}
        class_existential = {
            term for term in members if isinstance(term, Variable) and term in existential
        }
        class_answers = {
            term for term in members if isinstance(term, Variable) and term in answer_vars
        }
        if len(constants) > 1:
            return None
        if class_existential:
            if len(class_existential) > 1 or constants or class_answers:
                return None
            # No other rule variable may share the class: a frontier
            # variable equated with an existential one would assert
            # ``y = f(y)``, which no chase atom satisfies.
            other_rule_vars = {
                term
                for term in members
                if isinstance(term, Variable)
                and term in rule_vars
                and term not in existential
            }
            if other_rule_vars:
                return None
            leaking = {
                term
                for term in members
                if isinstance(term, Variable)
                and term not in existential
                and term in outside_vars
            }
            if leaking:
                must_swallow |= leaking
        # Two answer variables may merge (the disjunct then repeats the
        # representative in its answer tuple, cf. Theorem 1's phrasing);
        # an answer variable equated with a constant, however, has no CQ
        # form and the unifier is rejected (documented limitation for
        # queries mixing constants and answers).
        if class_answers and constants:
            return None
    if must_swallow:
        return must_swallow

    substitution: dict[Variable, Term] = {}
    for root, members in uf.classes().items():
        representative = _pick_representative(members, answer_vars, existential)
        for term in members:
            if isinstance(term, Variable) and term != representative:
                substitution[term] = representative
    return PieceUnifier(rule, frozenset(piece), substitution)


def _pick_representative(
    members: set[Term], answer_vars: set[Variable], existential: frozenset[Variable]
) -> Term:
    for term in members:
        if isinstance(term, Constant):
            return term
    for term in members:
        if isinstance(term, Variable) and term in answer_vars:
            return term
    non_existential = [
        term
        for term in members
        if isinstance(term, Variable) and term not in existential
    ]
    if non_existential:
        return sorted(non_existential, key=lambda v: v.name)[0]
    return sorted(members, key=repr)[0]


def _unify_pairs(piece: dict[Atom, Atom]) -> _UnionFind | None:
    uf = _UnionFind()
    for query_atom, head_atom in piece.items():
        if query_atom.predicate != head_atom.predicate:
            return None
        for query_term, head_term in zip(query_atom.args, head_atom.args):
            uf.union(query_term, head_term)
    return uf


def iter_piece_unifiers(
    query: ConjunctiveQuery, rule: TGD, fresh: FreshVariables
) -> Iterator[PieceUnifier]:
    """All (extension-closed) piece unifiers of ``query`` with ``rule``.

    The rule is renamed apart internally.  Enumeration starts from every
    single (query atom, head atom) pair and extends pieces only when class
    safety demands it, so the unifiers produced are the most general ones.
    """
    renamed = rule.rename_apart(fresh)
    head_atoms = list(renamed.head)
    seen_pieces: set[frozenset[tuple[Atom, Atom]]] = set()

    def explore(piece: dict[Atom, Atom]) -> Iterator[PieceUnifier]:
        key = frozenset(piece.items())
        if key in seen_pieces:
            return
        seen_pieces.add(key)
        uf = _unify_pairs(piece)
        if uf is None:
            return
        verdict = _validated(renamed, query, piece, uf)
        if verdict is None:
            return
        if isinstance(verdict, PieceUnifier):
            yield verdict
            return
        # Extend: every atom containing a leaking variable must join the
        # piece; branch over head-atom choices for each such atom.
        offenders = [
            item
            for item in query.atoms
            if item not in piece and item.variable_set() & verdict
        ]
        if not offenders:
            return
        choice_lists = []
        for offender in offenders:
            options = [h for h in head_atoms if h.predicate == offender.predicate]
            if not options:
                return
            choice_lists.append([(offender, option) for option in options])
        for combo in itertools.product(*choice_lists):
            extended = dict(piece)
            extended.update(dict(combo))
            yield from explore(extended)

    for head_atom in head_atoms:
        for query_atom in query.atoms:
            if query_atom.predicate != head_atom.predicate:
                continue
            yield from explore({query_atom: head_atom})
