"""End-to-end certain-answer computation: rewrite vs materialize.

The whole point of the BDD/FUS property (Section 1) is that querying the
elusive ``Ch(T, D)`` can be replaced by querying ``D`` with a rewritten
UCQ.  This module implements both strategies so the crossover experiment
(E9) can compare them:

* **rewrite-then-evaluate** — pay once per query shape, independent of the
  database;
* **materialize-then-evaluate** — pay once per database (chase to a
  fixpoint or a safe depth), then answer every query cheaply.

A third spelling of the first strategy pushes the evaluation into SQLite:
:func:`answer_by_rewriting_sql` compiles the rewriting's disjuncts to
SELECT-joins (:mod:`repro.storage.sqlcompile`) and lets the database's
join engine answer them — the literal reading of the BDD property, where
"evaluate the UCQ over ``D``" means handing SQL to the store holding
``D``.  :func:`answer` is the backend switch over all of this.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chase.engine import (
    CancellationToken,
    ChaseBudget,
    ChaseResult,
    _coerce_budget,
    chase,
)
from ..logic.containment import evaluate_ucq
from ..logic.homomorphism import evaluate
from ..logic.instance import Instance
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Term
from ..logic.tgd import Theory
from .bdd import depth_bound_from_rewriting
from .engine import RewritingBudget, RewritingResult, rewrite

# One fallback chase budget for every answering backend: memory, columnar
# and sqlite give up at the same point, so backends can differ in where
# the joins run but never in when a non-terminating chase is cut off.
DEFAULT_ANSWER_CHASE_BUDGET = ChaseBudget(max_rounds=100, max_atoms=500_000)


def _base_restricted(
    answers: set[tuple[Term, ...]], base: Instance
) -> set[tuple[Term, ...]]:
    domain = base.domain()
    return {
        answer for answer in answers if all(term in domain for term in answer)
    }


def answer_by_rewriting(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    budget: RewritingBudget | None = None,
    prepared: RewritingResult | None = None,
) -> set[tuple[Term, ...]]:
    """Certain answers via UCQ rewriting (Theorem 1).

    ``prepared`` lets callers amortize the rewriting across databases (the
    realistic OMQA deployment mode and the E9 benchmark's fast path).
    """
    result = prepared if prepared is not None else rewrite(theory, query, budget)
    if not result.complete:
        raise RuntimeError("rewriting incomplete; cannot answer soundly")
    answers = evaluate_ucq(result.ucq, instance)
    if result.always_true and query.is_boolean() and len(instance):
        answers.add(())
    return answers


def answer_by_rewriting_sql(
    theory: Theory,
    query: ConjunctiveQuery,
    store,
    budget: RewritingBudget | None = None,
    prepared: RewritingResult | None = None,
) -> set[tuple[Term, ...]]:
    """Certain answers via UCQ rewriting, evaluated *inside* SQLite.

    ``store`` is a :class:`repro.storage.sqlite.SQLiteStore` already
    holding the database.  The rewriting's disjuncts are compiled to one
    UNION of SELECT-joins and executed by SQLite's join engine — the
    answer set is exactly :func:`answer_by_rewriting`'s (pinned by
    ``tests/test_storage_equivalence.py``).  Pass ``prepared`` to
    amortize the rewriting; :class:`repro.rewriting.session.OMQASession`
    additionally caches the compiled SQL per query shape.
    """
    from ..storage.sqlcompile import evaluate_ucq_sql

    result = prepared if prepared is not None else rewrite(theory, query, budget)
    if not result.complete:
        raise RuntimeError("rewriting incomplete; cannot answer soundly")
    answers = evaluate_ucq_sql(result.ucq, store)
    if result.always_true and query.is_boolean() and len(store):
        answers.add(())
    return answers


def answer_by_materialization(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    depth: int | None = None,
    budget: ChaseBudget | None = None,
    prepared: ChaseResult | None = None,
    max_rounds: int | None = None,
    max_atoms: int | None = None,
    cancel: "CancellationToken | None" = None,
) -> set[tuple[Term, ...]]:
    """Certain answers via chasing.

    With ``depth`` given, chase that many rounds (sound and complete when
    ``depth >= n_query`` for a BDD theory).  Without it, chase to a
    fixpoint within ``budget`` and fail loudly otherwise.  Resource
    limits are a :class:`repro.chase.engine.ChaseBudget`; pass
    ``budget=ChaseBudget(max_rounds=..., max_atoms=...)``.  Answers are
    restricted to base-domain tuples — certain answers over labelled
    nulls are not answers.

    .. versionchanged:: 1.2
        The ``max_rounds=`` / ``max_atoms=`` kwargs (deprecated since
        1.1) now raise ``TypeError``; pass ``budget=ChaseBudget(...)``.
    """
    budget = _coerce_budget(
        budget,
        DEFAULT_ANSWER_CHASE_BUDGET,
        max_rounds,
        max_atoms,
    )
    if prepared is not None:
        result = prepared
    else:
        if depth is not None:
            budget = ChaseBudget(
                max_rounds=depth, max_atoms=budget.max_atoms, on_exceeded=budget.on_exceeded
            )
        result = chase(theory, instance, budget=budget, cancel=cancel)
        if depth is None and not result.terminated:
            raise RuntimeError(
                "chase did not terminate within budget; pass an explicit depth "
                "certified by depth_bound_from_rewriting()"
            )
    return _base_restricted(evaluate(query, result.instance), instance)


def certain_answers(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    budget: RewritingBudget | None = None,
    chase_budget: ChaseBudget | None = None,
    cancel: "CancellationToken | None" = None,
) -> set[tuple[Term, ...]]:
    """Certain answers by the safest available route.

    Tries rewriting first; when saturation does not complete, falls back to
    a terminating chase (limited by ``chase_budget``).  Raises when neither
    route is conclusive.  For repeated queries over the same theory prefer
    :class:`repro.rewriting.session.OMQASession`, which caches both routes.
    """
    result = rewrite(theory, query, budget)
    if result.complete:
        return answer_by_rewriting(theory, query, instance, prepared=result)
    return answer_by_materialization(
        theory, query, instance, budget=chase_budget, cancel=cancel
    )


def answer(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    backend: str = "memory",
    db_path: "str | None" = None,
    budget: RewritingBudget | None = None,
    chase_budget: ChaseBudget | None = None,
    cancel: "CancellationToken | None" = None,
) -> set[tuple[Term, ...]]:
    """Certain answers with a storage-backend switch.

    ``backend`` resolves through the one registry,
    :func:`repro.storage.resolve_backend` — ``"memory"``, ``"columnar"``
    or ``"sqlite"``, uniformly with ``OMQASession`` and the CLI.  Every
    backend returns the same set: they differ in *where* the joins run,
    never in the answers, and all three cut a non-terminating fallback
    chase at the same :data:`DEFAULT_ANSWER_CHASE_BUDGET`.

    ``backend="memory"`` is :func:`certain_answers` unchanged.

    ``backend="columnar"`` loads ``instance`` into an in-RAM
    :class:`~repro.storage.columnar.ColumnarStore` and evaluates the UCQ
    rewriting as hash joins over interned term ids
    (:func:`~repro.chase.columnar_kernel.evaluate_ucq_columnar`); when
    the rewriting does not saturate, it materializes with the columnar
    chase kernel and evaluates over the result.

    ``backend="sqlite"`` loads ``instance`` into a
    :class:`~repro.storage.sqlite.SQLiteStore` (at ``db_path``, or a
    private in-memory database) and evaluates the UCQ rewriting there;
    when the rewriting does not saturate, it falls back to the
    store-backed chase (:func:`~repro.storage.chasestore.chase_into_store`)
    and evaluates the query over the materialized store, answers
    restricted to the base domain as usual.

    ``cancel`` threads a :class:`~repro.chase.engine.CancellationToken`
    into whichever fallback chase the backend runs (rewriting-route
    evaluation is not interruptible — it is one query, not a fixpoint);
    a fired token surfaces as the chase's usual interruption semantics.

    A ``db_path`` pointing at a database that already holds facts is
    accepted only when those facts are content-identical to ``instance``
    (the digest check mirrors ``OMQASession``'s store reuse); anything
    else raises :class:`~repro.storage.chasestore.StoreChaseError` —
    evaluating the rewriting over a mixture of stored and passed facts
    would return unsound answers.
    """
    from ..storage.base import resolve_backend

    resolved = resolve_backend(backend, db_path)
    if resolved.name == "memory":
        return certain_answers(
            theory, query, instance, budget, chase_budget, cancel=cancel
        )
    chase_budget = chase_budget or DEFAULT_ANSWER_CHASE_BUDGET
    if resolved.name == "columnar":
        from ..chase.columnar_kernel import evaluate_ucq_columnar
        from ..storage.columnar import ColumnarStore

        result = rewrite(theory, query, budget)
        if result.complete:
            with ColumnarStore(instance) as store:
                answers = evaluate_ucq_columnar(result.ucq, store)
            if result.always_true and query.is_boolean() and len(instance):
                answers.add(())
            return answers
        materialized = chase(
            theory, instance, budget=chase_budget, backend="columnar",
            cancel=cancel,
        )
        if not materialized.terminated:
            raise RuntimeError(
                "columnar chase did not terminate within budget and the "
                "rewriting is incomplete; no sound route to certain answers"
            )
        with ColumnarStore(materialized.instance) as store:
            answers = evaluate_ucq_columnar(query, store)
        return _base_restricted(answers, instance)
    from ..storage.base import instance_digest
    from ..storage.chasestore import StoreChaseError, chase_into_store
    from ..storage.sqlcompile import evaluate_ucq_sql
    from ..storage.sqlite import SQLiteStore

    result = rewrite(theory, query, budget)
    with SQLiteStore(resolved.path if resolved.path is not None else ":memory:") as store:
        if result.complete:
            if len(store):
                if store.digest() != instance_digest(instance):
                    raise StoreChaseError(
                        f"store at {store.path!r} already holds facts that "
                        "differ from `instance`; refusing to evaluate the "
                        "rewriting over the mixture (use a fresh db_path)"
                    )
            else:
                store.add_many(instance)
            return answer_by_rewriting_sql(theory, query, store, prepared=result)
        outcome = chase_into_store(
            theory, instance, store, budget=chase_budget, cancel=cancel
        )
        if not outcome.terminated:
            raise RuntimeError(
                "store chase did not terminate within budget and the "
                "rewriting is incomplete; no sound route to certain answers"
            )
        return _base_restricted(evaluate_ucq_sql(query, store), instance)


@dataclass
class AgreementReport:
    """Cross-validation of the two strategies on one input (tests use it)."""

    rewriting_answers: set[tuple[Term, ...]]
    materialization_answers: set[tuple[Term, ...]]

    @property
    def agree(self) -> bool:
        return self.rewriting_answers == self.materialization_answers


def cross_validate(
    theory: Theory,
    query: ConjunctiveQuery,
    instance: Instance,
    budget: RewritingBudget | None = None,
    max_rounds: int = 30,
) -> AgreementReport:
    """Answer both ways and report agreement.

    The materialization side uses the rewriting-certified depth bound, so
    the comparison is exact even for non-terminating (but BDD) theories.
    """
    result = rewrite(theory, query, budget)
    if not result.complete:
        raise RuntimeError("rewriting incomplete; nothing to cross-validate")
    by_rewriting = answer_by_rewriting(theory, query, instance, prepared=result)
    depth = depth_bound_from_rewriting(theory, query, budget, max_depth=max_rounds)
    if result.always_true and query.is_boolean():
        # The boolean query is entailed via empty-bodied rules at depth 1.
        depth = max(depth, 1)
    by_chase = answer_by_materialization(theory, query, instance, depth=depth)
    return AgreementReport(by_rewriting, by_chase)
