"""Canonical forms of conjunctive queries, up to variable renaming.

The saturation engine (:mod:`repro.rewriting.engine`) keeps its disjunct
set as a dict keyed by a *canonical isomorphism key*: two CQs share the
key exactly when some variable bijection maps one onto the other while
preserving the answer tuple position-for-position.  That turns the most
common pruning event of the saturation loop — a rewriting step
reproducing a disjunct that is already kept, merely with different
variable names — from two NP-hard containment searches into one dict
probe.  The same key makes the engine's output independent of the fresh
variable naming history, which is what lets the parallel frontier mode
(:mod:`repro.rewriting.parallel`) produce a byte-identical kept set.

The key is computed by exact canonical labeling, McKay-style but sized
for CQ bodies (tens of atoms, a handful of existential variables):

1. answer variables are pinned — position ``i`` of the answer tuple
   fixes its (first-occurrence) variable to label ``a_i``, because an
   isomorphism between rewriting disjuncts must preserve the answer
   tuple positionally;
2. existential variables start in color classes refined to a fixed
   point (Weisfeiler-Leman over atom incidences);
3. the remaining symmetry is broken by individualization: branch over
   the members of the first minimal color class, re-refine, recurse,
   and keep the lexicographically smallest complete atom encoding.

The key is exact, not a heuristic invariant: the target cell at each
node is chosen by color alone and refinement is iso-invariant, so an
isomorphism between two queries maps one search tree onto the other
leaf-for-leaf — isomorphic queries reach the same minimal encoding.
Conversely, equal keys exhibit the bijection (label ``i`` to label
``i``) directly, so key equality *implies* isomorphism too.  Highly
symmetric bodies
(variable cliques) cost a factorial number of leaves in the size of one
automorphism class; rewriting workloads keep those classes tiny, and the
result is cached on the query object either way.
"""

from __future__ import annotations

from typing import Mapping

from ..logic.atoms import Atom
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Constant, FunctionTerm, Term, Variable

# Variable name prefixes of the canonical renaming.  The parser rejects
# leading underscores in user input and the unifier's fresh supply uses
# the ``_rw`` prefix, so canonical names never collide with either.
_ANSWER_PREFIX = "_ca"
_EXIST_PREFIX = "_ce"


def _encode_term(
    term: Term,
    answer_labels: Mapping[Variable, int],
    exist_labels: Mapping[Variable, int],
) -> tuple:
    """One term of the key under a complete labeling (nested tuples)."""
    if isinstance(term, Variable):
        index = answer_labels.get(term)
        if index is not None:
            return ("a", index)
        return ("e", exist_labels[term])
    if isinstance(term, Constant):
        return ("c", term.name)
    if isinstance(term, FunctionTerm):
        return (
            "f",
            term.functor,
            tuple(
                _encode_term(arg, answer_labels, exist_labels) for arg in term.args
            ),
        )
    return ("g", repr(term))


def _encode_atoms(
    atoms: tuple[Atom, ...],
    answer_labels: Mapping[Variable, int],
    exist_labels: Mapping[Variable, int],
) -> tuple[tuple, ...]:
    return tuple(
        sorted(
            (
                item.predicate.name,
                item.predicate.arity,
                tuple(
                    _encode_term(arg, answer_labels, exist_labels)
                    for arg in item.args
                ),
            )
            for item in atoms
        )
    )


def _slot_marker(
    term: Term, answer_labels: Mapping[Variable, int], variable: Variable
) -> tuple:
    """An iso-invariant marker for one argument slot, seen from ``variable``."""
    if term == variable:
        return ("self",)
    if isinstance(term, Variable):
        index = answer_labels.get(term)
        if index is not None:
            return ("a", index)
        return ("e",)
    if isinstance(term, Constant):
        return ("c", term.name)
    return ("g", repr(term))


def _initial_colors(
    atoms: tuple[Atom, ...],
    existentials: list[Variable],
    answer_labels: Mapping[Variable, int],
) -> dict[Variable, int]:
    """Color each existential variable by its occurrence signature."""
    signatures: dict[Variable, tuple] = {}
    for var in existentials:
        occurrence: list[tuple] = []
        for item in atoms:
            if var not in item.variable_set():
                continue
            occurrence.append(
                (
                    item.predicate.name,
                    item.predicate.arity,
                    tuple(_slot_marker(arg, answer_labels, var) for arg in item.args),
                )
            )
        signatures[var] = tuple(sorted(occurrence))
    return _intern(signatures)


def _intern(signatures: dict[Variable, tuple]) -> dict[Variable, int]:
    """Canonical integer colors: position in the sorted distinct signatures."""
    ordered = sorted(set(signatures.values()))
    ranks = {signature: rank for rank, signature in enumerate(ordered)}
    return {var: ranks[signature] for var, signature in signatures.items()}


def _refine(
    atoms: tuple[Atom, ...],
    existentials: list[Variable],
    answer_labels: Mapping[Variable, int],
    colors: dict[Variable, int],
) -> dict[Variable, int]:
    """Weisfeiler-Leman refinement of ``colors`` to a fixed point."""
    class_count = len(set(colors.values()))
    while class_count < len(existentials):
        signatures: dict[Variable, tuple] = {}
        for var in existentials:
            occurrence: list[tuple] = []
            for item in atoms:
                if var not in item.variable_set():
                    continue
                slots: list[tuple] = []
                for arg in item.args:
                    if arg == var:
                        slots.append(("self",))
                    elif isinstance(arg, Variable) and arg in colors:
                        slots.append(("e", colors[arg]))
                    else:
                        slots.append(_slot_marker(arg, answer_labels, var))
                occurrence.append(
                    (item.predicate.name, item.predicate.arity, tuple(slots))
                )
            signatures[var] = (colors[var], tuple(sorted(occurrence)))
        refined = _intern(signatures)
        refined_count = len(set(refined.values()))
        if refined_count == class_count:
            return refined
        colors = refined
        class_count = refined_count
    return colors


def _search_labels(
    atoms: tuple[Atom, ...],
    existentials: list[Variable],
    answer_labels: Mapping[Variable, int],
) -> dict[Variable, int]:
    """The label assignment minimizing the encoded atom tuple (exact)."""
    base_colors = _refine(
        atoms,
        existentials,
        answer_labels,
        _initial_colors(atoms, existentials, answer_labels),
    )
    total = len(existentials)
    best: list = [None, None]  # [encoding, labels]

    def descend(assigned: dict[Variable, int], colors: dict[Variable, int]) -> None:
        if len(assigned) == total:
            encoding = _encode_atoms(atoms, answer_labels, assigned)
            if best[0] is None or encoding < best[0]:
                best[0] = encoding
                best[1] = dict(assigned)
            return
        unlabeled = [var for var in existentials if var not in assigned]
        target = min(colors[var] for var in unlabeled)
        next_label = len(assigned)
        for var in unlabeled:
            if colors[var] != target:
                continue
            assigned[var] = next_label
            # Individualize: assigned labels become singleton colors
            # (offset past every refined color), then re-refine.
            branched = dict(colors)
            for fixed, label in assigned.items():
                branched[fixed] = total + len(atoms) + label + 1_000_000
            descend(assigned, _refine(atoms, existentials, answer_labels, branched))
            del assigned[var]

    descend({}, base_colors)
    return best[1] or {}


def _labelings(
    query: ConjunctiveQuery,
) -> tuple[dict[Variable, int], dict[Variable, int]]:
    answer_labels: dict[Variable, int] = {}
    for var in query.answer_vars:
        if var not in answer_labels:
            answer_labels[var] = len(answer_labels)
    existentials = sorted(query.existential_vars(), key=lambda v: v.name)
    exist_labels = _search_labels(query.atoms, existentials, answer_labels)
    return answer_labels, exist_labels


def canonical_key(query: ConjunctiveQuery) -> tuple:
    """The isomorphism key: a hashable nested tuple, cached on the query.

    ``canonical_key(p) == canonical_key(q)`` iff some variable bijection
    maps ``p`` onto ``q`` atom-set-for-atom-set while sending ``p``'s
    answer tuple to ``q``'s position-for-position.
    """
    cached = query.__dict__.get("_canonical_key")
    if cached is None:
        answer_labels, exist_labels = _labelings(query)
        cached = (
            tuple(answer_labels[var] for var in query.answer_vars),
            _encode_atoms(query.atoms, answer_labels, exist_labels),
        )
        object.__setattr__(query, "_canonical_key", cached)
    return cached


def canonical_form(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The canonically renamed and atom-ordered representative, cached.

    The result is a plain :class:`ConjunctiveQuery` equal (as a Python
    value) for every member of the isomorphism class: variables are
    renamed to ``_ca<i>`` / ``_ce<j>`` by their canonical labels and
    atoms are sorted by their encoded form.  Idempotent — the returned
    query is its own canonical form, with key and form pre-cached.
    """
    cached = query.__dict__.get("_canonical_form")
    if cached is None:
        answer_labels, exist_labels = _labelings(query)
        key = (
            tuple(answer_labels[var] for var in query.answer_vars),
            _encode_atoms(query.atoms, answer_labels, exist_labels),
        )
        renaming: dict[Variable, Variable] = {}
        for var, index in answer_labels.items():
            renaming[var] = Variable(f"{_ANSWER_PREFIX}{index}")
        for var, index in exist_labels.items():
            renaming[var] = Variable(f"{_EXIST_PREFIX}{index}")
        renamed = query.substitute(renaming)
        order = sorted(
            range(len(renamed.atoms)),
            key=lambda position: (
                renamed.atoms[position].predicate.name,
                renamed.atoms[position].predicate.arity,
                tuple(
                    _encode_term(arg, answer_labels, exist_labels)
                    for arg in query.atoms[position].args
                ),
            ),
        )
        cached = ConjunctiveQuery(
            renamed.answer_vars,
            tuple(renamed.atoms[position] for position in order),
        )
        object.__setattr__(cached, "_canonical_key", key)
        object.__setattr__(cached, "_canonical_form", cached)
        object.__setattr__(query, "_canonical_key", key)
        object.__setattr__(query, "_canonical_form", cached)
    return cached


def adopt_canonical(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Install the canonical caches on a query already in canonical form.

    The parallel frontier workers canonicalize in-process and ship the
    result over the wire; the coordinator knows the decoded query *is*
    a canonical form, so its key can be read off the ``_ca``/``_ce``
    variable names directly instead of re-running the labeling search.
    Only ever call this with the decoded output of
    :func:`canonical_form` — anything else corrupts the dedup index.
    """
    if "_canonical_key" in query.__dict__:
        return query
    answer_labels: dict[Variable, int] = {}
    exist_labels: dict[Variable, int] = {}
    for var in query.variables():
        if var.name.startswith(_ANSWER_PREFIX):
            answer_labels[var] = int(var.name[len(_ANSWER_PREFIX):])
        elif var.name.startswith(_EXIST_PREFIX):
            exist_labels[var] = int(var.name[len(_EXIST_PREFIX):])
        else:
            raise ValueError(f"{var.name!r} is not a canonical variable name")
    key = (
        tuple(answer_labels[var] for var in query.answer_vars),
        _encode_atoms(query.atoms, answer_labels, exist_labels),
    )
    object.__setattr__(query, "_canonical_key", key)
    object.__setattr__(query, "_canonical_form", query)
    return query


__all__ = ["adopt_canonical", "canonical_form", "canonical_key"]
