"""Zero-dependency observability for the chase and rewriting engines.

Every long-running engine in this repository (the semi-oblivious chase,
the homomorphism search underneath it, rewriting saturation) carries a
:class:`Telemetry` object: a bag of integer counters, monotonic phase
timers, per-round records and optional event hooks.  The goal is to make
budget blow-ups *explainable* — when a chase truncates or a rewriting
marks itself incomplete, the stats say which round, which rule shape and
which index buckets ate the time.

Design constraints:

* **Cheap on the hot path.**  Counters are plain dict increments; the
  homomorphism search takes ``telemetry=None`` and skips all accounting
  behind a single ``is not None`` check, so un-instrumented callers pay
  one branch per search node.
* **JSON all the way down.**  :meth:`Telemetry.as_dict` emits plain
  dicts/lists/numbers only, so CLI ``--json`` output and the
  ``benchmarks/out/*.json`` trajectories serialize without adapters.
  :func:`validate_stats_dict` is the schema check the CI smoke run (and
  the bench harness tests) assert against.
* **Engine-agnostic naming.**  Counter names are dotted
  ``<subsystem>.<metric>`` strings (``chase.matches``,
  ``hom.backtrack_clashes``, ``rewrite.subsumption_checks``); engines own
  their prefix, nothing registers anything centrally.

The conventional counters (see ``docs/architecture.md`` §6 for the full
table):

``chase.rounds / chase.matches / chase.atoms_produced / chase.dedup_hits``
    per-run totals of the round loop;
``plan.rules_skipped / plan.pivots_skipped / plan.plans_reused /
plan.nodes_saved``
    effect of the join planner: delta-relevance rule skips, pivot
    searches avoided, searches run under a precomputed static order;
``hom.nodes / hom.candidates_estimated / hom.candidates_scanned /
hom.backtrack_clashes``
    search effort of the backtracking join, including the index-bucket
    size estimates versus the facts actually scanned;
``rewrite.steps / rewrite.produced / rewrite.kept / rewrite.evicted /
rewrite.subsumption_checks / rewrite.queue_peak``
    saturation effort of the piece-rewriting engine;
``rewrite.dedup_hits / rewrite.subsumption_skipped /
rewrite.rules_skipped / rewrite.subsumed_dropped /
rewrite.oversize_dropped / rewrite.evicted_while_queued``
    the rewriting fast path (``docs/performance.md`` §6): produced CQs
    absorbed by canonical-key dedup, kept candidates the inverted
    predicate index excluded without a containment search, rules pruned
    by head-predicate relevance, produced CQs dropped as subsumed or
    oversize, and frontier entries evicted before their turn;
``rwparallel.workers / rwparallel.batches / rwparallel.cqs_shipped /
rwparallel.worker_us / rwparallel.bytes_sent /
rwparallel.bytes_received / rwparallel.fallback_inprocess``
    the rewriting frontier pool (``RewritingBudget(workers=N)``) —
    separate from ``rewrite.*`` so the sequential-vs-parallel byte
    parity of those counters holds verbatim;
``session.rewrite_cache_hits / session.rewrite_cache_misses /
session.chase_cache_hits / session.chase_cache_misses``
    ``OMQASession`` cache outcomes — rewritings per query shape, chases
    per instance content — mirrored into the session's aggregated stats
    for ``--stats`` output; under concurrent callers the rewrite
    counters also certify single-flight compilation (one miss per
    shape, racing requests counted as hits);
``service.requests / service.responses_2xx / service.responses_4xx /
service.responses_5xx / service.theories / service.uploads /
service.appends / service.retracts / service.queries /
service.deadline_timeouts``
    the HTTP service (:mod:`repro.service`, see ``docs/service.md``):
    requests parsed, responses by status class, theories registered,
    write traffic by kind, queries answered, and requests cut off by
    the per-request deadline — all mutated on the event loop only and
    serialized by ``GET /metrics`` next to each theory's engine
    counters;
``delta.updates / delta.noops / delta.added_base /
delta.retracted_base / delta.overdeleted / delta.rederived /
delta.rounds``
    incremental maintenance (:mod:`repro.incremental`, see
    ``docs/incremental.md``): update calls that changed the base versus
    no-ops, base facts added and retracted, atoms over-deleted beyond
    the retraction itself (the DRed cone), cone members re-derived from
    surviving facts, and maintenance rounds executed;
``parallel.workers / parallel.rounds / parallel.shards_dispatched /
parallel.worker_us / parallel.merge_dedup_hits / parallel.bytes_sent /
parallel.bytes_received / parallel.worker_truncated /
parallel.fallback_inprocess``
    the parallel round executor (``chase(..., workers=N)``): pool size,
    pooled rounds, work items shipped, summed worker wall-time in
    microseconds, duplicates collapsed by the deterministic merge, wire
    traffic per direction, workers that hit ``worker_max_atoms``, and
    whether the run degraded to the in-process executor;
``store.writes / store.batches / store.sql_queries / store.rows_scanned /
store.terms_interned``
    the storage subsystem (``repro.storage``): facts submitted to a
    store, write-buffer flushes, SELECT statements executed (compiled
    rewritings and store-chase rounds included), result rows fetched
    back into Python, and term-dictionary inserts;
``chase.deadline_hit / chase.cancelled / parallel.worker_restarts /
store.lock_retries``
    the fault-tolerance layer (see ``docs/robustness.md``): runs stopped
    by ``ChaseBudget.deadline_s``, runs stopped by a
    :class:`~repro.chase.CancellationToken`, dead parallel workers
    respawned mid-run, and ``database is locked`` statements retried
    with backoff; ``<name>.interrupted`` marks a :meth:`Telemetry.timer`
    block that unwound with an exception.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Any, Callable, Iterator

# An event hook receives (event name, payload); payloads are the same
# plain dicts that end up in ``as_dict()["rounds"]``.
Hook = Callable[[str, dict], None]


class Telemetry:
    """Counters + phase timers + per-round records + event hooks."""

    __slots__ = ("counters", "phases", "rounds", "hooks")

    def __init__(self, hooks: Iterator[Hook] | tuple[Hook, ...] = ()) -> None:
        self.counters: Counter[str] = Counter()
        self.phases: dict[str, float] = {}
        self.rounds: list[dict[str, Any]] = []
        self.hooks: list[Hook] = list(hooks)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Bump a counter (dotted ``subsystem.metric`` name)."""
        self.counters[name] += amount

    def gauge_max(self, name: str, value: int) -> None:
        """Track the maximum a quantity reaches (e.g. queue length)."""
        if value > self.counters.get(name, 0):
            self.counters[name] = value

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time under ``name`` (monotonic clock)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Like :meth:`phase`, but exception unwinds are first-class.

        The elapsed time is recorded even when the timed block raises —
        a deadline or cancellation unwinding through an engine must not
        lose the phase's wall time — and the unwind itself is marked by
        bumping the ``<name>.interrupted`` counter, so an aborted run is
        distinguishable from a clean one in the exported stats.  The
        engines wrap their run loops in ``timer`` for exactly this
        reason (``ChaseBudget(deadline_s=..., on_exceeded='raise')``
        still yields a ``chase`` phase covering the partial run).
        """
        started = time.perf_counter()
        try:
            yield
        except BaseException:
            self.counters[f"{name}.interrupted"] += 1
            raise
        finally:
            elapsed = time.perf_counter() - started
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def record_round(self, **fields: Any) -> dict[str, Any]:
        """Append one per-round record and notify hooks with it."""
        entry = dict(fields)
        self.rounds.append(entry)
        self.emit("round", entry)
        return entry

    def emit(self, event: str, payload: dict[str, Any]) -> None:
        for hook in self.hooks:
            hook(event, payload)

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------
    def fork(self) -> "Telemetry":
        """A copy to continue from (``resume`` seeds its stats this way).

        The copy shares the hooks but owns its counters and records, so
        the original run's stats stay immutable history.
        """
        copy = Telemetry(tuple(self.hooks))
        copy.counters = Counter(self.counters)
        copy.phases = dict(self.phases)
        copy.rounds = [dict(entry) for entry in self.rounds]
        return copy

    def merge(self, other: "Telemetry") -> None:
        """Fold another run's stats into this one (session aggregation)."""
        self.counters.update(other.counters)
        for name, seconds in other.phases.items():
            self.phases[name] = self.phases.get(name, 0.0) + seconds
        self.rounds.extend(dict(entry) for entry in other.rounds)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready snapshot (sorted counters, rounded timings)."""
        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "phases": {
                name: round(seconds, 6) for name, seconds in sorted(self.phases.items())
            },
            "rounds": [dict(entry) for entry in self.rounds],
        }

    @classmethod
    def from_dict(cls, stats: dict[str, Any]) -> "Telemetry":
        """Rebuild a collector from an :meth:`as_dict` snapshot.

        The chase checkpointing layer (:mod:`repro.storage.checkpoint`)
        persists a run's stats and restores them here, so a resumed
        chase continues its counters and per-round records exactly as
        :func:`repro.chase.engine.resume` expects.  Validates the input
        via :func:`validate_stats_dict` first.
        """
        validate_stats_dict(stats)
        restored = cls()
        restored.counters.update(stats["counters"])
        restored.phases.update(stats["phases"])
        restored.rounds.extend(dict(entry) for entry in stats["rounds"])
        return restored

    def __repr__(self) -> str:
        return (
            f"Telemetry({len(self.counters)} counters, "
            f"{len(self.phases)} phases, {len(self.rounds)} rounds)"
        )


def validate_stats_dict(stats: Any) -> None:
    """Assert that ``stats`` matches the stats JSON schema.

    Raises ``ValueError`` describing the first violation.  The schema is
    deliberately tiny — three keys, scalar leaves — so every emitter
    (``ChaseResult.stats``, ``RewritingResult.stats``, CLI ``--json``,
    ``benchmarks/out/*.json``) can be checked by the same function.
    """
    if not isinstance(stats, dict):
        raise ValueError(f"stats must be a dict, got {type(stats).__name__}")
    missing = {"counters", "phases", "rounds"} - set(stats)
    if missing:
        raise ValueError(f"stats dict missing keys: {sorted(missing)}")
    counters = stats["counters"]
    if not isinstance(counters, dict) or not all(
        isinstance(name, str) and isinstance(value, int)
        for name, value in counters.items()
    ):
        raise ValueError("stats['counters'] must map str -> int")
    phases = stats["phases"]
    if not isinstance(phases, dict) or not all(
        isinstance(name, str) and isinstance(value, (int, float))
        for name, value in phases.items()
    ):
        raise ValueError("stats['phases'] must map str -> seconds")
    rounds = stats["rounds"]
    if not isinstance(rounds, list) or not all(
        isinstance(entry, dict)
        and all(isinstance(key, str) for key in entry)
        and all(isinstance(value, (int, float, bool)) for value in entry.values())
        for entry in rounds
    ):
        raise ValueError("stats['rounds'] must be a list of flat numeric records")
