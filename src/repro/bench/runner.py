"""Parameter-sweep helpers shared by the bench targets.

``pytest-benchmark`` measures the wall-clock of the core operation; the
functions here provide the surrounding sweep/collect/report structure so
each bench file stays a thin declaration of its experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .reporting import Table


@dataclass
class SweepPoint:
    """One measured point of a sweep: parameter, value, elapsed seconds."""

    parameter: Any
    value: Any
    seconds: float


def sweep(
    parameters: Iterable[Any],
    measure: Callable[[Any], Any],
) -> list[SweepPoint]:
    """Run ``measure`` for each parameter, timing each call."""
    points: list[SweepPoint] = []
    for parameter in parameters:
        started = time.perf_counter()
        value = measure(parameter)
        elapsed = time.perf_counter() - started
        points.append(SweepPoint(parameter=parameter, value=value, seconds=elapsed))
    return points


def sweep_table(
    title: str,
    parameter_name: str,
    value_columns: Sequence[str],
    points: list[SweepPoint],
    explode: Callable[[Any], tuple] | None = None,
) -> Table:
    """Render sweep points into a :class:`Table` (plus a seconds column)."""
    table = Table(title, [parameter_name, *value_columns, "seconds"])
    for point in points:
        cells = explode(point.value) if explode else (point.value,)
        table.add(point.parameter, *cells, round(point.seconds, 3))
    return table
