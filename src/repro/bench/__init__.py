"""Benchmark harness: sweeps and fixed-width reporting."""

from .reporting import (
    Table,
    grows_at_least_geometrically,
    monotonically_nondecreasing,
    roughly_flat,
)
from .runner import SweepPoint, sweep, sweep_table

__all__ = [
    "SweepPoint",
    "Table",
    "grows_at_least_geometrically",
    "monotonically_nondecreasing",
    "roughly_flat",
    "sweep",
    "sweep_table",
]
