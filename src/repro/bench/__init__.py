"""Benchmark harness: sweeps, fixed-width reporting, regression guard."""

from .guard import (
    GuardReport,
    Scenario,
    compare_documents,
    default_baseline_path,
    run_guard_scenarios,
)
from .reporting import (
    Table,
    bench_document,
    grows_at_least_geometrically,
    monotonically_nondecreasing,
    roughly_flat,
    validate_bench_document,
)
from .runner import SweepPoint, sweep, sweep_table

__all__ = [
    "GuardReport",
    "Scenario",
    "SweepPoint",
    "Table",
    "bench_document",
    "compare_documents",
    "default_baseline_path",
    "grows_at_least_geometrically",
    "monotonically_nondecreasing",
    "roughly_flat",
    "run_guard_scenarios",
    "sweep",
    "sweep_table",
    "validate_bench_document",
]
