"""Benchmark regression guard: canonical ``BENCH_*.json`` runs + comparison.

The experiment benches under ``benchmarks/`` measure *shapes* (doubling
series, locality defects); this module is the *trajectory* side: a fixed
set of guard scenarios — mirroring ``bench_e1_doubling``,
``bench_e5_tc_cycles`` and ``bench_micro_core_ops`` at their default
sizes, plus a ``parallel_equivalence`` tripwire pinning the parallel
round executor to the sequential engine's checksums — is timed into a
canonical JSON document (see
:func:`repro.bench.reporting.validate_bench_document` for the schema) and
compared against a committed baseline.

Two design points keep the comparison honest across machines:

* **Calibration.**  Every run times a fixed pure-Python spin loop and the
  comparison works on *calibration-normalized* seconds, so a uniformly
  slower CI runner does not read as a regression (and a faster one does
  not mask a real regression).
* **Value checksums.**  Each scenario returns a JSON-able value derived
  from the computed results (atom counts, disjunct counts, answer
  counts).  The guard fails when a value drifts from the baseline: a perf
  "win" that changes what the engine computes is a bug, not a win.

The CLI front-end is ``python -m repro bench-guard`` (see
:mod:`repro.cli`); CI runs it in ``--quick`` mode against
``benchmarks/baselines/BENCH_guard_quick.json``.  Refresh workflow: rerun
with ``--update`` on the reference hardware and commit the rewritten
baseline together with the change that moved the numbers.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .reporting import Table, bench_document, validate_bench_document

DEFAULT_TOLERANCE = 0.25
_CALIBRATION_LOOP = 1_500_000


@dataclass(frozen=True)
class Scenario:
    """One guard workload: a named callable returning a checksum value.

    ``run`` receives ``quick`` and must be deterministic: the returned
    value is compared against the baseline to catch semantic drift.
    """

    name: str
    description: str
    run: Callable[[bool], Any]


def _run_e1_doubling(quick: bool) -> list[int]:
    """Mirror of ``bench_e1_doubling``: the five-operation process per n."""
    from ..frontier.process import run_process
    from ..frontier.td import phi_r_n

    depths = (1, 2, 3) if quick else (1, 2, 3, 4)
    counts: list[int] = []
    for depth in depths:
        result = run_process(phi_r_n(depth))
        counts.append(len(result.rewriting()))
    return counts


def _run_e5_tc_cycles(quick: bool) -> list[list[int]]:
    """Mirror of ``bench_e5_tc_cycles``: locality defects on E-cycles."""
    from ..chase import ChaseBudget, chase
    from ..frontier import locality_defect, min_support_size
    from ..workloads import edge_cycle, example42_tc

    theory = example42_tc()
    lengths = (3, 4) if quick else (3, 4, 5)
    rows: list[list[int]] = []
    for length in lengths:
        cycle = edge_cycle(length)
        defect = locality_defect(theory, cycle, bound=length - 1, depth=length)
        run = chase(
            theory, cycle, budget=ChaseBudget(max_rounds=length, max_atoms=300_000)
        )
        worst = 0
        for item in sorted(run.round_added[length], key=repr):
            support = min_support_size(theory, cycle, item, depth=length + 1)
            worst = max(worst, support or 0)
        rows.append([length, len(defect.missing), worst, len(run.instance)])
    return rows


def _run_micro_core_ops(quick: bool) -> list[int]:
    """Mirror of ``bench_micro_core_ops``: the hot inner operations."""
    from ..chase import ChaseBudget, chase, resume
    from ..frontier.process import run_process
    from ..frontier.td import phi_r_n
    from ..logic import evaluate, parse_query
    from ..logic.containment import is_contained_in
    from ..workloads import (
        green_path,
        t_d,
        university_database,
        university_ontology,
    )

    repeats = 2 if quick else 5
    database = university_database(students=120, professors=20, courses=40, seed=13)
    query = parse_query(
        "q(x) := exists c, p. EnrolledIn(x, c), TaughtBy(c, p), Professor(p)"
    )
    for _ in range(repeats):
        answers = evaluate(query, database)
    ontology = university_ontology()
    prefix = chase(
        ontology, database, budget=ChaseBudget(max_rounds=1, max_atoms=100_000)
    )
    for _ in range(repeats):
        resumed = resume(prefix, 1, budget=ChaseBudget(max_atoms=100_000))
    big = parse_query("q(x) := exists a, b, c. E(x, a), E(a, b), E(b, c), E(c, x)")
    small = parse_query("q(x) := exists a. E(x, a)")
    contained = 0
    for _ in range(repeats):
        contained += int(is_contained_in(big, small))
    td_run = chase(
        t_d(), green_path(3), budget=ChaseBudget(max_rounds=3, max_atoms=100_000)
    )
    process = run_process(phi_r_n(2))
    return [
        len(answers),
        len(resumed.instance),
        contained,
        len(td_run.instance),
        len(process.survivors),
    ]


_PARALLEL_WORKERS = 4
_LAST_PARALLEL: dict | None = None


def _run_parallel_equivalence(quick: bool) -> dict:
    """Parallel == sequential tripwire on the e5 workload (T_c cycles).

    Chases the transitive-closure theory of Example 42 over an E-cycle
    twice — in-process and with ``workers=_PARALLEL_WORKERS`` — and
    checksums both results.  The compared ``value`` carries the atom
    count, a round-for-round equality bit and a content checksum, all of
    which are executor-independent by construction (see
    :mod:`repro.chase.parallel`); any drift between the two executors or
    against the baseline fails the guard.  The measured wall-clock
    speedup is hardware-dependent, so it is reported in the document's
    ``meta["parallel"]`` (see :func:`run_guard_scenarios`) rather than
    compared: on a single-CPU runner the parallel run is *slower* (the
    processes time-slice one core and pay the pipe protocol), while on a
    multi-core machine the per-round matching overlaps.
    """
    import hashlib

    from ..chase import ChaseBudget, chase
    from ..workloads import edge_cycle, example42_tc

    global _LAST_PARALLEL
    theory = example42_tc()
    length, rounds = (30, 8) if quick else (60, 12)
    cycle = edge_cycle(length)
    budget = ChaseBudget(max_rounds=rounds, max_atoms=500_000)
    started = time.perf_counter()
    sequential = chase(theory, cycle, budget=budget)
    sequential_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel = chase(theory, cycle, budget=budget, workers=_PARALLEL_WORKERS)
    parallel_seconds = time.perf_counter() - started
    identical = [frozenset(r) for r in sequential.round_added] == [
        frozenset(r) for r in parallel.round_added
    ]
    digest = hashlib.sha256(
        "\n".join(sorted(repr(item) for item in parallel.instance)).encode("utf8")
    ).hexdigest()[:16]
    _LAST_PARALLEL = {
        "workers": _PARALLEL_WORKERS,
        "sequential_seconds": round(sequential_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": (
            round(sequential_seconds / parallel_seconds, 3) if parallel_seconds else 0.0
        ),
        "fallback_inprocess": int(
            bool(parallel.stats.counters.get("parallel.fallback_inprocess", 0))
        ),
    }
    return {"atoms": len(parallel.instance), "identical": identical, "checksum": digest}


_LAST_COLUMNAR: dict | None = None


def _run_columnar_equivalence(quick: bool) -> dict:
    """Columnar kernel == object engine tripwire on a dense join workload.

    Chases binary transitive closure over a seeded dense random edge set
    twice — ``backend="memory"`` (the object engine) and
    ``backend="columnar"`` (hash joins over interned ids) — and
    checksums both results.  Dense TC is the workload the kernel exists
    for: matches outnumber new atoms by two orders of magnitude, so the
    run is dominated by join candidate scans and duplicate checks, which
    the kernel does over flat int tuples.  The compared ``value``
    carries the atom count, a round-for-round equality bit, a *counter*
    equality bit (the kernel mirrors the engine's pivot semantics, so
    ``chase.matches``/``chase.atoms_produced``/``chase.dedup_hits`` must
    agree exactly, not just the atoms) and a content checksum.  The
    measured speedup is hardware-dependent, so it lands in
    ``meta["columnar"]`` rather than the compared value.
    """
    import hashlib

    from ..logic import parse_theory
    from ..chase import ChaseBudget, chase
    from ..workloads.generators import random_instance

    global _LAST_COLUMNAR
    theory = parse_theory("E(x, y), E(y, z) -> E(x, z)", name="guard-tc")
    predicates = sorted(
        {atom.predicate for rule in theory.rules() for atom in rule.body},
        key=lambda item: item.name,
    )
    facts, domain = (80, 24) if quick else (160, 40)
    base = random_instance(
        predicates, fact_count=facts, domain_size=domain, seed=20260808
    )
    budget = ChaseBudget(max_rounds=20, max_atoms=2_000_000)
    started = time.perf_counter()
    reference = chase(theory, base, budget=budget, backend="memory")
    object_seconds = time.perf_counter() - started
    started = time.perf_counter()
    columnar = chase(theory, base, budget=budget, backend="columnar")
    columnar_seconds = time.perf_counter() - started
    identical = columnar.round_added == reference.round_added
    counters_equal = all(
        columnar.stats.counters[name] == reference.stats.counters[name]
        for name in ("chase.matches", "chase.atoms_produced", "chase.dedup_hits")
    )
    digest = hashlib.sha256(
        "\n".join(sorted(repr(item) for item in columnar.instance)).encode("utf8")
    ).hexdigest()[:16]
    _LAST_COLUMNAR = {
        "object_seconds": round(object_seconds, 6),
        "columnar_seconds": round(columnar_seconds, 6),
        "speedup": (
            round(object_seconds / columnar_seconds, 3) if columnar_seconds else 0.0
        ),
        "fallback_rules": int(
            bool(columnar.stats.counters.get("columnar.fallback_rules", 0))
        ),
    }
    return {
        "atoms": len(columnar.instance),
        "identical": identical,
        "counters_equal": counters_equal,
        "checksum": digest,
    }


_LAST_STORAGE: dict | None = None


def _run_sql_equivalence(quick: bool) -> dict:
    """SQLite-evaluated answers == in-memory answers, e1/e5 workloads.

    Three equalities, each a baseline-compared bit:

    * **e1** — the Theorem-5B process rewriting of ``phi_r_n`` evaluated
      over a green path, once by the in-memory homomorphism engine and
      once compiled to SQL (:mod:`repro.storage.sqlcompile`);
    * **e5** — the ``T_c`` chase over an E-cycle run in RAM and run
      *inside* the store (:func:`repro.storage.chasestore.chase_into_store`),
      compared by content digest, then queried both ways over the
      materialized facts;
    * **certain** — end-to-end ``answer(backend="memory")`` versus
      ``answer(backend="sqlite")`` on a linear theory over the cycle.

    Wall-clock splits and ``store.*`` counters are hardware-dependent, so
    they land in ``meta["storage"]`` (mirroring ``meta["parallel"]``)
    rather than in the compared value.
    """
    from ..chase import ChaseBudget, chase
    from ..frontier.process import run_process
    from ..frontier.td import phi_r_n
    from ..logic import evaluate, parse_query, parse_theory
    from ..logic.containment import evaluate_ucq
    from ..storage import (
        SQLiteStore,
        chase_into_store,
        content_digest,
        evaluate_ucq_sql,
    )
    from ..rewriting import answer
    from ..workloads import edge_cycle, example42_tc, green_path

    global _LAST_STORAGE
    # e1: the process rewriting as a UCQ over a base instance.
    depth = 2 if quick else 3
    ucq = run_process(phi_r_n(depth)).rewriting()
    path = green_path(8 if quick else 12)
    started = time.perf_counter()
    memory_answers = evaluate_ucq(ucq, path)
    e1_memory_seconds = time.perf_counter() - started
    with SQLiteStore(":memory:") as store:
        store.add_many(path)
        started = time.perf_counter()
        sql_answers = evaluate_ucq_sql(ucq, store)
        e1_sql_seconds = time.perf_counter() - started
        e1 = {
            "answers": len(sql_answers),
            "equal": memory_answers == sql_answers,
            "digest_match": store.digest() == content_digest(path),
        }

    # e5: the T_c chase in RAM versus inside the store, digest-compared.
    theory = example42_tc()
    length, rounds = (12, 5) if quick else (24, 8)
    cycle = edge_cycle(length)
    budget = ChaseBudget(max_rounds=rounds, max_atoms=500_000)
    started = time.perf_counter()
    reference = chase(theory, cycle, budget=budget)
    e5_memory_seconds = time.perf_counter() - started
    probe = parse_query("q(x, y) := exists x1, y1. R(x, y, x1, y1)")
    with SQLiteStore(":memory:") as store:
        started = time.perf_counter()
        outcome = chase_into_store(theory, cycle, store, budget=budget)
        e5_store_seconds = time.perf_counter() - started
        memory_probe = evaluate(probe, reference.instance)
        sql_probe = evaluate_ucq_sql(probe, store)
        e5 = {
            "atoms": outcome.atom_count,
            "digest_match": outcome.digest() == content_digest(reference.instance),
            "answers": len(sql_probe),
            "equal": memory_probe == sql_probe,
        }
        store_counters = {
            name: store.stats.counters[name]
            for name in sorted(store.stats.counters)
            if name.startswith("store.")
        }

    # certain answers end to end, both backends.
    linear = parse_theory(
        "E(x, y) -> exists z. E(y, z)\nE(x, y) -> R(x, y)", name="guard-linear"
    )
    certain_query = parse_query("q(u) := R('a0', u)")
    by_memory = answer(linear, certain_query, cycle, backend="memory")
    by_sqlite = answer(linear, certain_query, cycle, backend="sqlite")
    certain = {"answers": len(by_sqlite), "equal": by_memory == by_sqlite}

    _LAST_STORAGE = {
        "e1_memory_seconds": round(e1_memory_seconds, 6),
        "e1_sql_seconds": round(e1_sql_seconds, 6),
        "e5_memory_seconds": round(e5_memory_seconds, 6),
        "e5_store_seconds": round(e5_store_seconds, 6),
        **store_counters,
    }
    return {"e1": e1, "e5": e5, "certain": certain}


_LAST_FAULTS: dict | None = None


class _CountdownToken:
    """A duck-typed cancellation token that fires after N ``cancelled`` polls.

    Deterministic for a given engine version (the engine's control checks
    are strided by fixed constants), which is all the scenario needs: the
    compared bits assert *resume exactness*, not where the cut landed.
    """

    def __init__(self, checks: int) -> None:
        self._remaining = checks

    def cancel(self) -> None:
        self._remaining = 0

    @property
    def cancelled(self) -> bool:
        if self._remaining <= 0:
            return True
        self._remaining -= 1
        return False


def _run_fault_tolerance(quick: bool) -> dict:
    """Interruption leaves a resumable prefix; disabled injection is free.

    Three deterministic checks on the e5 workload (T_c over an E-cycle):

    * **instrumented == plain** — the same chase run once bare and once
      with a live :class:`~repro.chase.CancellationToken` plus a far
      ``deadline_s`` produces round-for-round identical atoms (the
      control plumbing may cost time, never results; both wall-clocks
      land in ``meta["faults"]`` so the overhead stays visible);
    * **cancel + resume == uninterrupted** — a token fired mid-run stops
      the chase on a complete-round boundary, ``chase.cancelled`` is
      counted, and :func:`~repro.chase.resume` reaches the exact same
      rounds/atoms as the never-interrupted run (Observation 8);
    * **fault registry round-trips** — ``faults.inject("sqlite.locked")``
      forces exactly one synthetic lock error, the store's backoff
      retries it (``store.lock_retries == 1``) and the write succeeds.
    """
    import hashlib

    from .. import faults
    from ..chase import ChaseBudget, chase, resume
    from ..storage import SQLiteStore
    from ..workloads import edge_cycle, example42_tc

    global _LAST_FAULTS
    theory = example42_tc()
    length, rounds = (30, 8) if quick else (60, 12)
    cycle = edge_cycle(length)
    budget = ChaseBudget(max_rounds=rounds, max_atoms=500_000)

    started = time.perf_counter()
    plain = chase(theory, cycle, budget=budget)
    plain_seconds = time.perf_counter() - started

    from ..chase import CancellationToken

    armed = ChaseBudget(max_rounds=rounds, max_atoms=500_000, deadline_s=3600.0)
    started = time.perf_counter()
    instrumented = chase(theory, cycle, budget=armed, cancel=CancellationToken())
    instrumented_seconds = time.perf_counter() - started
    instrumented_identical = [
        frozenset(added) for added in plain.round_added
    ] == [frozenset(added) for added in instrumented.round_added]

    token = _CountdownToken(3)
    interrupted = chase(theory, cycle, budget=budget, cancel=token)
    cancelled_counted = interrupted.stats.counters["chase.cancelled"] == 1
    cut_rounds = interrupted.rounds_run
    resumed = resume(
        interrupted, rounds - cut_rounds, budget=ChaseBudget(max_atoms=500_000)
    )
    resume_exact = [frozenset(added) for added in plain.round_added] == [
        frozenset(added) for added in resumed.round_added
    ]

    faults.clear()
    faults.inject("sqlite.locked")
    try:
        with SQLiteStore(":memory:") as probe:
            probe.add_many(cycle)
            lock_retried = probe.stats.counters["store.lock_retries"] == 1
            survived = len(probe) == len(cycle)
    finally:
        faults.clear()

    digest = hashlib.sha256(
        "\n".join(sorted(repr(item) for item in resumed.instance)).encode("utf8")
    ).hexdigest()[:16]
    _LAST_FAULTS = {
        "plain_seconds": round(plain_seconds, 6),
        "instrumented_seconds": round(instrumented_seconds, 6),
        "overhead_ratio": (
            round(instrumented_seconds / plain_seconds, 3) if plain_seconds else 0.0
        ),
        "interrupted_at_round": cut_rounds,
    }
    return {
        "atoms": len(plain.instance),
        "instrumented_identical": instrumented_identical,
        "cancelled_counted": cancelled_counted,
        "resume_exact": resume_exact,
        "lock_retried": lock_retried and survived,
        "checksum": digest,
    }


_LAST_REWRITING: dict | None = None


def _run_rewriting_saturation(quick: bool) -> dict:
    """Indexed rewriting == naive rewriting, with the speedup on record.

    Two workloads, mirroring the shapes of ``bench_e3_linear_rewritings``
    and ``bench_a3_rewriting_cores``:

    * **e3** — a path query over the linear theory ``T_p``; the kept set
      is tiny, so this pins the *output* (disjunct count plus a
      canonical-key checksum) rather than the speedup;
    * **a3** — a multi-answer join over the three DL-Lite-style
      ontologies merged into one theory.  Most rules are irrelevant to
      any one atom (the relevance filter prunes them), independent chains
      reach isomorphic duplicates through different unifier orders (the
      canonical-key dedup absorbs them) and the kept set is large enough
      that the inverted predicate index pays for itself.  This workload
      is timed three ways — ``use_indexes=False``, the default indexed
      engine, and ``workers=2`` — and the compared ``value`` carries the
      disjunct count, a canonical-key checksum, a naive-vs-indexed
      equality bit, the exact ``rewrite.*`` filter counters and a
      workers-parity bit (all ``rewrite.*`` counters *and* the disjunct
      reprs must match the sequential run byte for byte, per
      :mod:`repro.rewriting.parallel`).

    The naive/indexed wall-clock ratio is hardware-dependent, so it
    lands in ``meta["rewriting"]`` rather than the compared value; the
    refresh workflow keeps the committed baselines carrying the measured
    before/after ratio on the reference hardware.
    """
    import hashlib

    from ..logic import parse_query
    from ..logic.tgd import Theory
    from ..rewriting import RewritingBudget, canonical_key, rewrite
    from ..workloads import t_p
    from ..workloads.ontologies import (
        GeographyWorkload,
        MedicalWorkload,
        StockWorkload,
    )

    global _LAST_REWRITING

    def key_checksum(result) -> str:
        keys = sorted(repr(canonical_key(disjunct)) for disjunct in result.ucq)
        return hashlib.sha256("\n".join(keys).encode("utf8")).hexdigest()[:16]

    # e3 shape: a path query over T_p — small output, pinned exactly.
    path_length = 6 if quick else 8
    path_body = ", ".join(f"E(x{i}, x{i + 1})" for i in range(path_length))
    path_theory = t_p()
    path_naive = rewrite(
        path_theory,
        parse_query(f"q(x0) := {path_body}"),
        RewritingBudget(use_indexes=False),
    )
    path_indexed = rewrite(path_theory, parse_query(f"q(x0) := {path_body}"))
    e3 = {
        "disjuncts": len(path_indexed.ucq),
        "checksum": key_checksum(path_indexed),
        "naive_equal": key_checksum(path_naive) == key_checksum(path_indexed),
    }

    # a3 shape: a multi-answer join over the merged ontologies.
    rules = tuple(MedicalWorkload().theory.rules())
    rules += tuple(GeographyWorkload().theory.rules())
    rules += tuple(StockWorkload().theory.rules())
    theory = Theory(rules, name="guard-ontologies")
    text = (
        "q(x, y, z) := exists c, r, s. "
        "Diagnosed(x, c), LocatedIn(y, r), Owns(z, s)"
        if quick
        else "q(x, y, z, w) := exists c, r, s, c2. "
        "Diagnosed(x, c), LocatedIn(y, r), Owns(z, s), Diagnosed(w, c2)"
    )
    started = time.perf_counter()
    naive = rewrite(theory, parse_query(text), RewritingBudget(use_indexes=False))
    naive_seconds = time.perf_counter() - started
    started = time.perf_counter()
    indexed = rewrite(theory, parse_query(text))
    indexed_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel = rewrite(theory, parse_query(text), RewritingBudget(workers=2))
    parallel_seconds = time.perf_counter() - started

    def rewrite_counters(result) -> dict:
        return {
            name: count
            for name, count in sorted(result.stats.counters.items())
            if name.startswith("rewrite.")
        }

    workers_equal = rewrite_counters(parallel) == rewrite_counters(indexed) and sorted(
        repr(d) for d in parallel.ucq
    ) == sorted(repr(d) for d in indexed.ucq)
    counters = rewrite_counters(indexed)
    # Best-of across the harness's repeats, mirroring the min(runs) the
    # scenario's own seconds get: single-run jitter on a busy machine
    # should not decide the committed before/after ratio.
    if _LAST_REWRITING is not None:
        naive_seconds = min(naive_seconds, _LAST_REWRITING["naive_seconds"])
        indexed_seconds = min(indexed_seconds, _LAST_REWRITING["indexed_seconds"])
        parallel_seconds = min(parallel_seconds, _LAST_REWRITING["parallel_seconds"])
    _LAST_REWRITING = {
        "naive_seconds": round(naive_seconds, 6),
        "indexed_seconds": round(indexed_seconds, 6),
        "speedup": (
            round(naive_seconds / indexed_seconds, 3) if indexed_seconds else 0.0
        ),
        "parallel_seconds": round(parallel_seconds, 6),
        "fallback_inprocess": int(
            bool(parallel.stats.counters.get("rwparallel.fallback_inprocess", 0))
        ),
    }
    return {
        "e3": e3,
        "a3": {
            "disjuncts": len(indexed.ucq),
            "checksum": key_checksum(indexed),
            "naive_equal": key_checksum(naive) == key_checksum(indexed),
            "workers_equal": workers_equal,
            "subsumption_checks": counters.get("rewrite.subsumption_checks", 0),
            "subsumption_skipped": counters.get("rewrite.subsumption_skipped", 0),
            "dedup_hits": counters.get("rewrite.dedup_hits", 0),
            "rules_skipped": counters.get("rewrite.rules_skipped", 0),
        },
    }


_LAST_INCREMENTAL: dict | None = None


def _run_incremental_update(quick: bool) -> dict:
    """Delta maintenance == from-scratch chase, across all three backends.

    Drives one seeded random add/retract trajectory over a terminating
    existential theory three ways — :func:`repro.incremental_update` on
    the object engine, the same calls with ``backend="columnar"``, and
    :func:`repro.storage.update_store_chase` against a SQLite store —
    and after every step compares each maintained fixpoint's content
    digest against a full re-chase of the updated base (the DRed
    soundness claim of ``docs/incremental.md``, atom for atom).  The
    compared ``value`` carries the step count, the add/retract totals,
    one all-steps-equal bit per backend, the final atom count and a
    content checksum.  The incremental-vs-rechase wall-clock ratio is
    hardware-dependent, so it lands in ``meta["incremental"]`` rather
    than the compared value.
    """
    import hashlib
    import random

    from ..chase import ChaseBudget, chase
    from ..incremental import incremental_update
    from ..logic import Instance, parse_theory
    from ..storage import (
        SQLiteStore,
        chase_into_store,
        content_digest,
        update_store_chase,
    )
    from ..workloads.generators import random_instance

    global _LAST_INCREMENTAL
    theory = parse_theory(
        "E(x, y), E(y, z) -> E(x, z)\n"
        "E(x, y) -> exists m. M(x, m)\n"
        "M(x, m) -> H(x)",
        name="guard-incremental",
    )
    edge = next(
        atom.predicate
        for rule in theory.rules()
        for atom in rule.body
        if atom.predicate.name == "E"
    )
    pool_size, domain, steps = (60, 14, 4) if quick else (120, 20, 6)
    pool = sorted(
        random_instance(
            [edge], fact_count=pool_size, domain_size=domain, seed=20260808
        ),
        key=repr,
    )
    split = len(pool) // 2
    base = list(pool[:split])
    reserve = list(pool[split:])
    budget = ChaseBudget(max_rounds=40, max_atoms=500_000)
    rng = random.Random(97)

    memory = chase(theory, Instance(base), budget=budget, backend="memory")
    columnar = chase(theory, Instance(base), budget=budget, backend="columnar")
    memory_equal = columnar_equal = sqlite_equal = True
    incremental_seconds = 0.0
    scratch_seconds = 0.0
    adds = retracts = 0
    with SQLiteStore(":memory:") as store:
        chase_into_store(theory, Instance(base), store, budget=budget)
        for _ in range(steps):
            if reserve and (len(base) < 4 or rng.random() < 0.55):
                add = [reserve.pop() for _ in range(min(3, len(reserve)))]
                retract = []
            else:
                add = []
                retract = rng.sample(sorted(base, key=repr), k=min(2, len(base)))
            adds += len(add)
            retracts += len(retract)
            for item in retract:
                base.remove(item)
            base.extend(add)

            started = time.perf_counter()
            memory = incremental_update(
                memory, add=add, retract=retract, budget=budget
            ).result
            incremental_seconds += time.perf_counter() - started
            columnar = incremental_update(
                columnar, add=add, retract=retract, budget=budget, backend="columnar"
            ).result
            update_store_chase(store, theory, add=add, retract=retract, budget=budget)

            started = time.perf_counter()
            scratch = chase(theory, Instance(base), budget=budget, backend="memory")
            scratch_seconds += time.perf_counter() - started
            expected = content_digest(scratch.instance)
            memory_equal = memory_equal and (
                content_digest(memory.instance) == expected
            )
            columnar_equal = columnar_equal and (
                content_digest(columnar.instance) == expected
            )
            sqlite_equal = sqlite_equal and store.digest() == expected

    digest = hashlib.sha256(
        "\n".join(sorted(repr(item) for item in memory.instance)).encode("utf8")
    ).hexdigest()[:16]
    _LAST_INCREMENTAL = {
        "steps": steps,
        "incremental_seconds": round(incremental_seconds, 6),
        "scratch_seconds": round(scratch_seconds, 6),
        "speedup": (
            round(scratch_seconds / incremental_seconds, 3)
            if incremental_seconds
            else 0.0
        ),
    }
    return {
        "steps": steps,
        "adds": adds,
        "retracts": retracts,
        "memory_equal": memory_equal,
        "columnar_equal": columnar_equal,
        "sqlite_equal": sqlite_equal,
        "atoms": len(memory.instance),
        "checksum": digest,
    }


_LAST_SERVICE: dict | None = None


def _run_service_load(quick: bool) -> dict:
    """Concurrent service traffic answers exactly like a fresh session.

    Spins up an in-process :class:`~repro.service.server.OMQAService`
    and drives the :mod:`repro.bench.loadgen` plan through it: N asyncio
    clients mixing queries (rotating all three backends) with appends.
    The compared ``value`` is everything deterministic about the run —
    request/op counts, zero errors, the single-flight compile count
    (exactly one rewriting per distinct query shape, however many
    clients race), and the final per-query answer digests, which every
    backend must produce *and* which must equal a fresh from-scratch
    ``OMQASession.answer()`` over the reconstructed final instance.
    Throughput and p50/p99 latency are machine properties, so they land
    in ``meta["service"]`` rather than the compared value.
    """
    from .loadgen import run_loadgen

    global _LAST_SERVICE
    clients, ops = (3, 9) if quick else (6, 18)
    report = run_loadgen(
        clients=clients, ops_per_client=ops, append_every=3, workers=4
    )
    _LAST_SERVICE = {
        "seconds": report["seconds"],
        "throughput_rps": report["throughput_rps"],
        "p50_ms": report["latency_ms"]["p50"],
        "p99_ms": report["latency_ms"]["p99"],
        "max_ms": report["latency_ms"]["max"],
        "journal_mode": report["journal_mode"],
        "rewrite_cache_hits": report["rewrite_cache_hits"],
    }
    return {
        "clients": report["clients"],
        "requests": report["requests"],
        "queries": report["ops"]["queries"],
        "appends": report["ops"]["appends"],
        "errors": report["errors"],
        "compiles": report["rewrite_cache_misses"],
        "digests_match": report["digests_match"],
        "digests": report["final_digests"],
    }


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        "e1_doubling",
        "Theorem 5B rewriting process (bench_e1_doubling defaults)",
        _run_e1_doubling,
    ),
    Scenario(
        "e5_tc_cycles",
        "T_c locality defects on degree-2 cycles (bench_e5_tc_cycles defaults)",
        _run_e5_tc_cycles,
    ),
    Scenario(
        "micro_core_ops",
        "hot inner operations: join, chase round, containment, process",
        _run_micro_core_ops,
    ),
    Scenario(
        "parallel_equivalence",
        "parallel vs sequential chase on T_c cycles: identical checksums",
        _run_parallel_equivalence,
    ),
    Scenario(
        "columnar_equivalence",
        "columnar hash-join kernel vs object engine: identical chase, exact counters",
        _run_columnar_equivalence,
    ),
    Scenario(
        "sql_equivalence",
        "SQLite-evaluated answers and store chase match the in-memory engines",
        _run_sql_equivalence,
    ),
    Scenario(
        "fault_tolerance",
        "interruption leaves an exactly-resumable prefix; injection off is free",
        _run_fault_tolerance,
    ),
    Scenario(
        "rewriting_saturation",
        "indexed rewriting fast path vs naive engine: identical UCQ, exact counters",
        _run_rewriting_saturation,
    ),
    Scenario(
        "incremental_update",
        "delta-maintained fixpoints vs from-scratch chases: identical digests",
        _run_incremental_update,
    ),
    Scenario(
        "service_load",
        "concurrent service traffic: digests match a fresh session, one compile per shape",
        _run_service_load,
    ),
)


def _calibration_value() -> int:
    total = 0
    for index in range(_CALIBRATION_LOOP):
        total += index * index
    return total


def measure_calibration(repeats: int = 3) -> float:
    """Best-of-``repeats`` seconds of the fixed calibration spin loop."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _calibration_value()
        best = min(best, time.perf_counter() - started)
    return best


def run_guard_scenarios(
    quick: bool = False,
    repeats: int = 3,
    scenarios: tuple[Scenario, ...] = SCENARIOS,
    workers: int | None = None,
) -> dict:
    """Time every scenario and return the canonical BENCH document.

    ``workers`` overrides the process count the ``parallel_equivalence``
    scenario uses (default 4).  The scenario's compared ``value`` is
    worker-count-independent; the measured speedup lands in
    ``meta["parallel"]`` because wall-clock ratios are a property of the
    machine, not of the code under guard.
    """
    global _PARALLEL_WORKERS, _LAST_PARALLEL, _LAST_STORAGE, _LAST_COLUMNAR
    global _LAST_FAULTS, _LAST_REWRITING, _LAST_INCREMENTAL, _LAST_SERVICE
    saved_workers = _PARALLEL_WORKERS
    if workers is not None:
        _PARALLEL_WORKERS = max(2, workers)
    _LAST_PARALLEL = None
    _LAST_STORAGE = None
    _LAST_COLUMNAR = None
    _LAST_FAULTS = None
    _LAST_REWRITING = None
    _LAST_INCREMENTAL = None
    _LAST_SERVICE = None
    measured = []
    for scenario in scenarios:
        runs: list[float] = []
        value: Any = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            value = scenario.run(quick)
            runs.append(round(time.perf_counter() - started, 6))
        measured.append(
            {
                "name": scenario.name,
                "description": scenario.description,
                "seconds": min(runs),
                "runs": runs,
                "value": value,
            }
        )
    meta = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if _LAST_PARALLEL is not None:
        meta["parallel"] = dict(_LAST_PARALLEL)
    if _LAST_COLUMNAR is not None:
        meta["columnar"] = dict(_LAST_COLUMNAR)
    if _LAST_STORAGE is not None:
        meta["storage"] = dict(_LAST_STORAGE)
    if _LAST_FAULTS is not None:
        meta["faults"] = dict(_LAST_FAULTS)
    if _LAST_REWRITING is not None:
        meta["rewriting"] = dict(_LAST_REWRITING)
    if _LAST_INCREMENTAL is not None:
        meta["incremental"] = dict(_LAST_INCREMENTAL)
    if _LAST_SERVICE is not None:
        meta["service"] = dict(_LAST_SERVICE)
    _PARALLEL_WORKERS = saved_workers
    document = bench_document(
        mode="quick" if quick else "full",
        calibration_seconds=round(measure_calibration(), 6),
        scenarios=measured,
        meta=meta,
    )
    return document


@dataclass
class GuardRow:
    """One scenario's comparison outcome."""

    name: str
    baseline_seconds: float
    current_seconds: float
    normalized_ratio: float
    value_matches: bool
    regressed: bool


@dataclass
class GuardReport:
    """The comparison of a fresh run against a committed baseline."""

    rows: list[GuardRow]
    tolerance: float
    missing: list[str]

    @property
    def ok(self) -> bool:
        return not self.missing and all(
            row.value_matches and not row.regressed for row in self.rows
        )

    def table(self) -> Table:
        table = Table(
            f"bench-guard (tolerance {self.tolerance:.0%}, calibration-normalized)",
            ["scenario", "baseline s", "current s", "ratio", "values", "verdict"],
        )
        for row in self.rows:
            verdict = "ok"
            if not row.value_matches:
                verdict = "VALUE DRIFT"
            elif row.regressed:
                verdict = "REGRESSED"
            elif row.normalized_ratio < 1.0:
                verdict = "improved"
            table.add(
                row.name,
                row.baseline_seconds,
                row.current_seconds,
                round(row.normalized_ratio, 3),
                "match" if row.value_matches else "drift",
                verdict,
            )
        for name in self.missing:
            table.note(f"scenario {name!r} missing from the current run")
        return table


def compare_documents(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> GuardReport:
    """Compare a fresh BENCH document against the baseline one.

    A scenario regresses when its calibration-normalized seconds exceed
    the baseline's by more than ``tolerance``; a changed checksum value is
    always a failure (the workload no longer computes the same thing).
    """
    validate_bench_document(current)
    validate_bench_document(baseline)
    if current["mode"] != baseline["mode"]:
        raise ValueError(
            f"mode mismatch: current is {current['mode']!r}, "
            f"baseline is {baseline['mode']!r}"
        )
    current_calibration = current["calibration_seconds"] or 1.0
    baseline_calibration = baseline["calibration_seconds"] or 1.0
    current_by_name = {entry["name"]: entry for entry in current["scenarios"]}
    rows: list[GuardRow] = []
    missing: list[str] = []
    for entry in baseline["scenarios"]:
        fresh = current_by_name.get(entry["name"])
        if fresh is None:
            missing.append(entry["name"])
            continue
        normalized_ratio = (fresh["seconds"] / current_calibration) / (
            entry["seconds"] / baseline_calibration
        )
        rows.append(
            GuardRow(
                name=entry["name"],
                baseline_seconds=entry["seconds"],
                current_seconds=fresh["seconds"],
                normalized_ratio=normalized_ratio,
                value_matches=fresh["value"] == entry["value"],
                regressed=normalized_ratio > 1.0 + tolerance,
            )
        )
    return GuardReport(rows=rows, tolerance=tolerance, missing=missing)


def default_baseline_path(quick: bool) -> Path:
    """The committed baseline for the given mode, relative to the repo."""
    name = "BENCH_guard_quick.json" if quick else "BENCH_guard_full.json"
    return Path("benchmarks") / "baselines" / name
