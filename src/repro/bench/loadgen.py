"""Concurrent-load generator for the OMQA service (``repro loadgen``).

Drives N asyncio clients through deterministic mixed answer/append
traffic against an :class:`~repro.service.server.OMQAService` — spun up
in-process by default, or an already-running server via ``url`` — and
reports throughput, p50/p99 latency and a *correctness verdict*: after
every client has drained, each query is answered once more through the
server on every backend and its digest is compared against a fresh
from-scratch :class:`~repro.rewriting.session.OMQASession` answer over
the final instance (which the generator reconstructs locally — the
traffic plan is seeded and deterministic, so it knows exactly which
facts were appended).

The plan: client *k*'s op *i* is an append when ``i % append_every ==
append_every - 1`` (fresh constants namespaced by client, so appends
from different clients never collide) and otherwise a query, rotating
through :data:`QUERIES` and the three backends.  Appends change answers
mid-run — interleaved responses are only checked for HTTP success —
but the *final* state is unique regardless of interleaving, which is
what the digest comparison (and the ``service_load`` guard scenario)
pins.

Latency numbers are hardware- and scheduler-dependent: the guard
records them in uncompared ``meta["service"]``; only request counts,
error counts and the final digests are compared against baselines.
"""

from __future__ import annotations

import asyncio
import time
from typing import Iterable

from ..logic.instance import Instance
from ..logic.parser import parse_instance, parse_query, parse_theory

LOADGEN_THEORY_TEXT = (
    "EnrolledIn(s, c) -> Student(s)\n"
    "TaughtBy(c, p) -> Professor(p)\n"
    "Professor(p) -> Person(p)\n"
    "Student(s) -> Person(s)"
)

QUERIES = (
    ("students", "q(s) := Student(s)"),
    ("persons", "q(p) := Person(p)"),
    ("enrolments", "q(s, c) := EnrolledIn(s, c)"),
)

BACKENDS = ("memory", "columnar", "sqlite")


def seed_instance(students: int = 12, courses: int = 4) -> Instance:
    """The deterministic base instance every loadgen run starts from."""
    facts = []
    for index in range(students):
        facts.append(f"EnrolledIn(s{index}, c{index % courses})")
    for course in range(courses):
        facts.append(f"TaughtBy(c{course}, p{course % 2})")
    return parse_instance(". ".join(facts))


def append_facts(client: int, op: int) -> Instance:
    """The facts client ``client`` appends at op ``op`` (collision-free)."""
    return parse_instance(
        f"EnrolledIn(u{client}_{op}, d{client}). "
        f"TaughtBy(d{client}, w{client})"
    )


def _percentile(samples: "list[float]", fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def expected_final_instance(
    clients: int, ops_per_client: int, append_every: int
) -> Instance:
    final = seed_instance().copy()
    for client in range(clients):
        for op in range(ops_per_client):
            if op % append_every == append_every - 1:
                final.update(append_facts(client, op))
    return final


def expected_digests(final: Instance) -> dict[str, str]:
    """Fresh from-scratch session answers over the final instance."""
    from ..rewriting.session import OMQASession
    from ..service.registry import answers_digest

    session = OMQASession(parse_theory(LOADGEN_THEORY_TEXT, name="loadgen"))
    digests = {}
    for name, text in QUERIES:
        answers = session.answer(parse_query(text), final, strategy="auto")
        digests[name] = answers_digest(answers)
    session.close()
    return digests


async def _drive(
    host: str,
    port: int,
    clients: int,
    ops_per_client: int,
    append_every: int,
) -> dict:
    from ..service.client import ServiceClient

    setup = ServiceClient(host, port)
    registered = await setup.register_theory(
        parse_theory(LOADGEN_THEORY_TEXT, name="loadgen")
    )
    theory_id = registered["id"]
    await setup.upload_facts(theory_id, seed_instance())

    latencies: "list[float]" = []
    ops = {"queries": 0, "appends": 0}
    errors: "list[str]" = []

    async def client_task(client_index: int) -> None:
        client = ServiceClient(host, port)
        try:
            for op in range(ops_per_client):
                started = time.perf_counter()
                try:
                    if op % append_every == append_every - 1:
                        await client.append_facts(
                            theory_id, append_facts(client_index, op)
                        )
                        ops["appends"] += 1
                    else:
                        name, text = QUERIES[(client_index + op) % len(QUERIES)]
                        backend = BACKENDS[(client_index + op) % len(BACKENDS)]
                        await client.query(
                            theory_id, parse_query(text), backend=backend
                        )
                        ops["queries"] += 1
                except Exception as exc:  # noqa: BLE001 — tally, don't die
                    errors.append(f"client {client_index} op {op}: {exc}")
                latencies.append(time.perf_counter() - started)
        finally:
            await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(client_task(i) for i in range(clients)))
    elapsed = time.perf_counter() - started

    # Quiesced: the final state is unique, whatever the interleaving.
    final_digests: dict[str, dict[str, str]] = {}
    for backend in BACKENDS:
        final_digests[backend] = {}
        for name, text in QUERIES:
            document = await setup.query(
                theory_id, parse_query(text), backend=backend
            )
            final_digests[backend][name] = document["digest"]
    metrics = await setup.metrics()
    theory_metrics = metrics["theories"][theory_id]
    await setup.close()

    want = expected_digests(
        expected_final_instance(clients, ops_per_client, append_every)
    )
    digests_match = all(
        final_digests[backend] == want for backend in BACKENDS
    )
    requests = len(latencies)
    return {
        "clients": clients,
        "ops_per_client": ops_per_client,
        "append_every": append_every,
        "requests": requests,
        "errors": len(errors),
        "error_samples": errors[:5],
        "ops": dict(ops),
        "seconds": round(elapsed, 6),
        "throughput_rps": round(requests / elapsed, 3) if elapsed else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1000, 3),
            "p99": round(_percentile(latencies, 0.99) * 1000, 3),
            "max": round(max(latencies, default=0.0) * 1000, 3),
        },
        "final_digests": want,
        "backend_digests": final_digests,
        "digests_match": digests_match,
        "journal_mode": theory_metrics["journal_mode"],
        "rewrite_cache_misses": theory_metrics["counters"].get(
            "session.rewrite_cache_misses", 0
        ),
        "rewrite_cache_hits": theory_metrics["counters"].get(
            "session.rewrite_cache_hits", 0
        ),
    }


async def _run_async(
    clients: int,
    ops_per_client: int,
    append_every: int,
    workers: int,
    host: "str | None",
    port: "int | None",
) -> dict:
    if host is not None and port is not None:
        return await _drive(host, port, clients, ops_per_client, append_every)
    from ..service.server import OMQAService

    service = OMQAService(port=0, workers=workers)
    await service.start()
    try:
        report = await _drive(
            service.host, service.port, clients, ops_per_client, append_every
        )
        report["in_process"] = True
        report["workers"] = workers
        return report
    finally:
        await service.shutdown()


def run_loadgen(
    clients: int = 8,
    ops_per_client: int = 24,
    append_every: int = 6,
    workers: int = 4,
    quick: bool = False,
    host: "str | None" = None,
    port: "int | None" = None,
) -> dict:
    """Run the load generator and return the report document.

    ``quick`` shrinks the plan (4 clients × 12 ops) for CI smoke runs;
    ``host``/``port`` target an already-running server instead of the
    default in-process one.
    """
    if quick:
        clients = min(clients, 4)
        ops_per_client = min(ops_per_client, 12)
    return asyncio.run(
        _run_async(clients, ops_per_client, append_every, workers, host, port)
    )
