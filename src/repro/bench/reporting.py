"""Fixed-width table + structured JSON reporting for the experiment suite.

Every bench target prints its rows through :class:`Table` so that the
console output, EXPERIMENTS.md and the test assertions all look at the
same numbers in the same format.  A table also serializes to JSON
(:meth:`Table.as_dict` / :meth:`Table.to_json`); the benchmark conftest
persists both forms under ``benchmarks/out/``, so ``BENCH_*.json``
trajectories can carry engine telemetry (attach a
``Telemetry.as_dict()`` via :meth:`Table.attach_stats`), not just wall
time.

This module also owns the canonical ``BENCH_*.json`` *trajectory*
schema (:func:`bench_document` / :func:`validate_bench_document`): a
versioned document of timed guard scenarios with per-scenario value
checksums and a calibration measurement, produced and compared by
:mod:`repro.bench.guard`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass
class Table:
    """A tiny fixed-width table builder (with a JSON form).

    ``stats`` optionally carries an engine telemetry snapshot in the
    stats JSON schema (see :func:`repro.telemetry.validate_stats_dict`);
    it rides along in :meth:`as_dict` untouched.
    """

    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    stats: dict | None = None

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_stats(self, stats: dict) -> None:
        """Attach (or merge-by-key) a stats dict for the JSON output."""
        from ..telemetry import validate_stats_dict

        validate_stats_dict(stats)
        self.stats = stats

    def _widths(self) -> list[int]:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, value in enumerate(row):
                widths[index] = max(widths[index], len(_fmt(value)))
        return widths

    def render(self) -> str:
        widths = self._widths()
        header = " | ".join(
            column.ljust(width) for column, width in zip(self.columns, widths)
        )
        separator = "-+-".join("-" * width for width in widths)
        lines = [f"== {self.title} ==", header, separator]
        for row in self.rows:
            lines.append(
                " | ".join(
                    _fmt(value).ljust(width) for value, width in zip(row, widths)
                )
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())

    def column(self, name: str) -> list:
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def as_dict(self) -> dict:
        """Structured form: rows as column-keyed dicts, plus notes/stats."""
        document: dict = {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [
                dict(zip(self.columns, row)) for row in self.rows
            ],
            "notes": list(self.notes),
        }
        if self.stats is not None:
            document["stats"] = self.stats
        return document

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


BENCH_SCHEMA = "repro-bench/1"


def bench_document(
    mode: str,
    calibration_seconds: float,
    scenarios: list[dict],
    meta: dict | None = None,
) -> dict:
    """Assemble (and validate) a canonical ``BENCH_*.json`` document.

    ``scenarios`` entries carry ``name``, ``seconds`` (the comparable
    best-of-N), ``runs`` (every sample) and ``value`` (a deterministic
    JSON checksum of what was computed — the guard fails on drift).
    """
    document = {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "calibration_seconds": calibration_seconds,
        "scenarios": scenarios,
        "meta": dict(meta or {}),
    }
    validate_bench_document(document)
    return document


def validate_bench_document(document: Any) -> None:
    """Assert the BENCH JSON schema; raise ``ValueError`` on violation."""
    if not isinstance(document, dict):
        raise ValueError(f"bench document must be a dict, got {type(document).__name__}")
    if document.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench document schema must be {BENCH_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    if document.get("mode") not in ("quick", "full"):
        raise ValueError("bench document mode must be 'quick' or 'full'")
    calibration = document.get("calibration_seconds")
    if not isinstance(calibration, (int, float)) or calibration <= 0:
        raise ValueError("bench document needs a positive calibration_seconds")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ValueError("bench document needs a non-empty scenarios list")
    for entry in scenarios:
        if not isinstance(entry, dict):
            raise ValueError("every scenario must be a dict")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            raise ValueError("every scenario needs a non-empty name")
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ValueError(f"scenario {entry['name']!r} needs numeric seconds")
        runs = entry.get("runs")
        if not isinstance(runs, list) or not all(
            isinstance(sample, (int, float)) for sample in runs
        ):
            raise ValueError(f"scenario {entry['name']!r} needs a numeric runs list")
        if "value" not in entry:
            raise ValueError(f"scenario {entry['name']!r} needs a value checksum")


def monotonically_nondecreasing(values: Iterable[float]) -> bool:
    """Shape check: does the series never decrease?"""
    items = list(values)
    return all(a <= b for a, b in zip(items, items[1:]))


def roughly_flat(values: Iterable[float], tolerance: float = 0) -> bool:
    """Shape check: the last value does not exceed the earlier max + tol."""
    items = list(values)
    if len(items) < 2:
        return True
    return items[-1] <= max(items[:-1]) + tolerance


def grows_at_least_geometrically(values: Iterable[float], ratio: float) -> bool:
    """Shape check: consecutive ratios stay at or above ``ratio``."""
    items = [float(v) for v in values]
    return all(b >= ratio * a for a, b in zip(items, items[1:]) if a > 0)
