"""Deterministic fault injection for the chaos test-suite.

The fault-tolerance layer (deadlines, cancellation, worker retry, durable
store-chase rounds, atomic checkpoints — see ``docs/robustness.md``) is
only trustworthy if its failure paths are *executed*, not just written.
This registry lets tests arm named faults at precise points of a run:

>>> from repro import faults
>>> faults.inject("parallel.worker_death", round=3)
>>> # ... run a chase with workers=2: the coordinator SIGKILLs worker 0
>>> # just before dispatching round 3, exercising the respawn-and-retry
>>> # path end to end ...
>>> faults.clear()

Injection points call :func:`fire` with their site name (and the current
round where one exists); ``fire`` returns ``True`` exactly when an armed
fault matches, consuming one of its remaining ``times``.  The registered
sites:

``parallel.worker_death``
    coordinator kills worker 0 (SIGKILL) before dispatching the round;
``parallel.respawn_fail``
    the replacement worker's spawn raises, forcing the in-process degrade;
``storechase.kill``
    the store chase SIGKILLs its own process just *before* committing the
    round — the round's rows and meta roll back, simulating a crash at
    the worst point of the commit window;
``storechase.kill_midround``
    SIGKILL while the round's rows are still being inserted (uncommitted);
``checkpoint.crash``
    :func:`repro.storage.save_checkpoint_atomic` exits after writing the
    temp file but before ``os.replace`` — the target must stay intact;
``sqlite.locked``
    the store's next guarded statement raises a synthetic ``database is
    locked``, exercising the bounded jittered-backoff retry.

Two arming paths:

* in-process: :func:`inject` / :func:`clear` (what ``tests/test_faults.py``
  uses directly);
* cross-process: the ``REPRO_FAULTS`` environment variable, parsed once at
  import time — a comma-separated list of ``name`` or ``name@round``
  entries, e.g. ``REPRO_FAULTS="storechase.kill@3"`` for subprocess
  SIGKILL tests.  Call :func:`install_from_env` to re-parse explicitly.

Disabled cost is one module-global boolean check per *round* (never per
match): production runs with no faults armed pay nothing measurable —
pinned by the ``fault_tolerance`` bench-guard scenario.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

ENV_VAR = "REPRO_FAULTS"

_armed = False
_registry: dict[str, list["_Fault"]] = {}


@dataclass
class _Fault:
    """One armed fault: fires on matching rounds, ``times`` times total."""

    round: int | None
    times: int


def inject(name: str, round: int | None = None, times: int = 1) -> None:
    """Arm fault ``name``; fire on ``round`` (or any round when ``None``)."""
    global _armed
    if times < 1:
        raise ValueError("times must be at least 1")
    _registry.setdefault(name, []).append(_Fault(round=round, times=times))
    _armed = True


def clear() -> None:
    """Disarm every fault (tests call this in teardown)."""
    global _armed
    _registry.clear()
    _armed = False


def active() -> bool:
    """Whether any fault is currently armed (cheap module-global read)."""
    return _armed


def fire(name: str, round: int | None = None) -> bool:
    """Report (and consume) whether fault ``name`` is due at ``round``.

    A fault armed with ``round=None`` matches any round; one armed with a
    specific round matches only when the caller passes that round.  Each
    match consumes one of the fault's ``times``; exhausted faults are
    dropped.  With nothing armed this is a single boolean check.
    """
    if not _armed:
        return False
    faults = _registry.get(name)
    if not faults:
        return False
    for fault in faults:
        if fault.round is not None and fault.round != round:
            continue
        fault.times -= 1
        if fault.times <= 0:
            faults.remove(fault)
            if not faults:
                del _registry[name]
        return True
    return False


def install_from_env(value: str | None = None) -> int:
    """Arm faults from ``REPRO_FAULTS`` (or an explicit spec string).

    Format: comma-separated ``name`` or ``name@round`` entries.  Returns
    the number of faults armed.  Malformed entries raise ``ValueError``
    loudly — a typo silently disarming a chaos test would make the suite
    vacuous.
    """
    spec = os.environ.get(ENV_VAR, "") if value is None else value
    count = 0
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, round_text = entry.partition("@")
        if not name:
            raise ValueError(f"malformed {ENV_VAR} entry: {entry!r}")
        if round_text:
            try:
                round_number: int | None = int(round_text)
            except ValueError:
                raise ValueError(
                    f"malformed {ENV_VAR} round in entry: {entry!r}"
                ) from None
        else:
            round_number = None
        inject(name, round=round_number)
        count += 1
    return count


# Subprocess chaos tests set REPRO_FAULTS before exec'ing a fresh
# interpreter; arming at import keeps the injection invisible to the code
# under test (it just calls fire()).
install_from_env()
