"""Incremental maintenance of a chased fixpoint (delta adds, DRed deletes).

A terminated :class:`~repro.chase.engine.ChaseResult` is a fixpoint
``Ch(T, D)`` of the semi-oblivious Skolem chase.  This module maintains
that fixpoint under base-instance updates without re-chasing:

* **Additions** are a resumed semi-naive round.  By Observation 8 the
  materialized instance is an exact chase prefix, and Skolem naming is
  deterministic, so seeding the existing round loop
  (:func:`repro.chase.engine._run_rounds`) with the newly added facts as
  the delta derives exactly the atoms of ``Ch(T, D + A)`` that are
  missing — every already-present consequence is re-found by dedup, not
  re-invented.
* **Deletions** follow DRed (delete-and-rederive) over the recorded
  rule provenance: the retracted base facts and every atom whose
  recorded derivation (transitively) consumed one of them — the
  *deletion cone* — are over-deleted, then the survivors are chased to
  a fresh fixpoint.  Atoms with an alternative derivation untouched by
  the retraction are re-derived; the result is ``Ch(T, D - R)``
  atom-for-atom, though the per-round structure (``round_added``) of
  the maintained result generally differs from a from-scratch chase's.

Soundness of the survivor set: recorded parents are strictly shallower
than their children, so by induction on derivation depth every survivor
is derivable from the surviving base — over-deletion only errs towards
deleting too much, which the re-derive rounds repair.  Because the
survivors contain the new base and are contained in ``Ch(T, D')``,
chasing them to a fixpoint yields exactly ``Ch(T, D')``.

Retraction is refused (``ValueError``) for theories with universal head
variables (the ``true -> exists z. R(x, z)`` rules of ``T_d``): such
rules derive atoms with *empty* recorded bodies, so the provenance cone
cannot see that a derived atom depended on a retracted term's presence
in the domain.  Additions remain fully supported for those theories —
the delta-terms machinery of the round loop handles new domain elements
exactly.

The store-backed analogue is :func:`update_store_chase`, which walks
the ``repro_supports`` table persisted by
:func:`repro.storage.chase_into_store` instead of in-memory
derivations.

Counters (``delta.*``, see ``docs/incremental.md``): ``delta.updates``,
``delta.noops``, ``delta.added_base``, ``delta.retracted_base``,
``delta.overdeleted``, ``delta.rederived``, ``delta.rounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, TYPE_CHECKING

from .chase.engine import (
    CancellationToken,
    ChaseBudget,
    ChaseResult,
    SequentialRoundExecutor,
    _prepare_rules,
    _resolve_chase_backend,
    _RunControl,
    _run_rounds,
)
from .chase.provenance import deletion_cone, dependents_index
from .logic.atoms import Atom
from .logic.instance import Instance
from .telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .storage.chasestore import StoreChaseResult
    from .storage.sqlite import SQLiteStore

__all__ = [
    "UpdateOutcome",
    "incremental_update",
    "update_store_chase",
    "deletion_cone",
    "dependents_index",
]


@dataclass(frozen=True)
class UpdateOutcome:
    """What one :func:`incremental_update` call did.

    ``result`` is the maintained fixpoint (a fresh :class:`ChaseResult`
    whose ``stats`` continue the input run's, as :func:`resume` does);
    ``stats`` is the *maintenance-only* telemetry — the work of this
    update alone — which sessions merge into their aggregate without
    double-counting the original chase.
    """

    result: ChaseResult
    added: frozenset[Atom]
    retracted: frozenset[Atom]
    overdeleted: int
    rederived: int
    rounds_run: int
    stats: Telemetry

    @property
    def changed(self) -> bool:
        return bool(self.added or self.retracted)


def _check_retraction_supported(result: ChaseResult) -> None:
    offenders = [
        rule for rule in result.theory if rule.universal_head_variables()
    ]
    if offenders:
        raise ValueError(
            "retract is not supported for theories with universal head "
            "variables (empty-body derivations hide the dependency of "
            f"{len(offenders)} rule(s) on the active domain); re-chase "
            "from scratch instead"
        )


def incremental_update(
    result: ChaseResult,
    add: Iterable[Atom] = (),
    retract: Iterable[Atom] = (),
    budget: ChaseBudget | None = None,
    backend: str | None = None,
    cancel: CancellationToken | None = None,
    telemetry: Telemetry | None = None,
) -> UpdateOutcome:
    """Maintain a terminated chase under base additions and retractions.

    Returns an :class:`UpdateOutcome` whose ``result`` equals (as an atom
    set) a from-scratch ``chase(theory, new_base)`` — the delta-guard
    scenario and the property tests assert digest equality on every
    backend.  ``result.stats`` continues the input run's telemetry;
    ``outcome.stats`` isolates the maintenance work.

    Raises ``ValueError`` when the input run is not terminated (the
    prefix of a truncated run is not a fixpoint to maintain), when a
    fact is both added and retracted, when a retracted fact is a
    *derived* atom rather than a base fact, and when retraction meets a
    theory with universal head variables (see the module docstring).
    Retracting an absent fact or adding a present one is a no-op.
    """
    if not result.terminated:
        raise ValueError(
            "incremental_update requires a terminated chase result; "
            "run the chase to fixpoint (or resume it) first"
        )
    add = frozenset(add)
    retract = frozenset(retract)
    both = add & retract
    if both:
        raise ValueError(f"facts both added and retracted: {sorted(map(str, both))}")
    derived_retracts = [
        item for item in retract if item not in result.base and item in result.instance
    ]
    if derived_retracts:
        raise ValueError(
            "cannot retract derived atoms (retract their base ancestors "
            f"instead): {sorted(map(str, derived_retracts))}"
        )
    if retract and any(item in result.base for item in retract):
        _check_retraction_supported(result)

    budget = budget if budget is not None else ChaseBudget()
    backend_name = _resolve_chase_backend(backend)
    work = telemetry if telemetry is not None else Telemetry()
    counters = work.counters

    new_base = result.base.copy()
    removed = frozenset(item for item in retract if new_base.discard(item))
    added = frozenset(item for item in add if new_base.add(item))
    if not removed and not added:
        counters["delta.noops"] += 1
        combined = result.stats.fork()
        combined.merge(work)
        same = ChaseResult(
            theory=result.theory,
            base=result.base,
            instance=result.instance,
            round_added=result.round_added,
            terminated=True,
            derivations=result.derivations,
            stats=combined,
        )
        return UpdateOutcome(
            result=same,
            added=frozenset(),
            retracted=frozenset(),
            overdeleted=0,
            rederived=0,
            rounds_run=0,
            stats=work,
        )

    counters["delta.updates"] += 1
    counters["delta.added_base"] += len(added)
    counters["delta.retracted_base"] += len(removed)

    with work.timer("delta"):
        current = result.instance.copy()
        old_domain = current.domain()
        derivations = dict(result.derivations)

        deleted: set[Atom] = set()
        if removed:
            dependents = dependents_index(derivations)
            deleted = deletion_cone(removed, dependents, new_base)
            for item in deleted:
                current.discard(item)
                derivations.pop(item, None)
            counters["delta.overdeleted"] += len(deleted) - len(removed)

        # Atoms genuinely new to the instance seed the semi-naive delta;
        # added facts the chase had already derived are *promoted* to
        # base (their consequences are all present, nothing to derive).
        new_to_instance = [item for item in added if current.add(item)]
        for item in added:
            derivations.pop(item, None)

        # Rebuild the round partition: round 0 is the new base, later
        # rounds keep their surviving members (their true depths), with
        # deleted and promoted atoms stripped out.
        strip = deleted | set(added)
        round_added: list[frozenset[Atom]] = [frozenset(new_base)]
        for previous in result.round_added[1:]:
            round_added.append(previous - strip)

        prepared = _prepare_rules(result.theory)
        if removed:
            # The closure broke: run a full first round over the
            # survivors, after which the loop hands itself semi-naive
            # deltas as usual.
            delta = None
            delta_terms = None
            needs_rounds = True
        else:
            delta = Instance(new_to_instance) if new_to_instance else None
            delta_terms = current.domain() - old_domain
            needs_rounds = bool(new_to_instance)

        terminated = True
        rounds_before = len(round_added)
        executed_before = counters["chase.rounds"]
        if needs_rounds:
            executor: SequentialRoundExecutor | None = None
            if backend_name == "columnar":
                from .chase.columnar_kernel import make_columnar_executor

                executor = make_columnar_executor(prepared, current, work)
            try:
                terminated = _run_rounds(
                    prepared,
                    current,
                    round_added,
                    derivations,
                    rounds=budget.max_rounds,
                    budget=budget,
                    track_provenance=True,
                    semi_naive=True,
                    delta=delta,
                    delta_terms=delta_terms,
                    telemetry=work,
                    executor=executor,
                    control=_RunControl.start(budget, cancel),
                )
            finally:
                if executor is not None:
                    executor.close()
        rounds_run = len(round_added) - rounds_before
        counters["delta.rounds"] += counters["chase.rounds"] - executed_before

        rederived = sum(1 for item in deleted if item in current)
        counters["delta.rederived"] += rederived

    combined = result.stats.fork()
    combined.merge(work)
    maintained = ChaseResult(
        theory=result.theory,
        base=new_base,
        instance=current,
        round_added=round_added,
        terminated=terminated,
        derivations=derivations,
        stats=combined,
    )
    return UpdateOutcome(
        result=maintained,
        added=added,
        retracted=removed,
        overdeleted=len(deleted) - len(removed),
        rederived=rederived,
        rounds_run=rounds_run,
        stats=work,
    )


def update_store_chase(
    store: "SQLiteStore",
    theory,
    add: Iterable[Atom] = (),
    retract: Iterable[Atom] = (),
    budget: ChaseBudget | None = None,
    cancel: CancellationToken | None = None,
) -> "StoreChaseResult":
    """Maintain a SQLite store-backed chase fixpoint in place.

    The store must hold a terminated :func:`repro.storage.chase_into_store`
    run of ``theory`` (matching theory text, current schema).  Additions
    are inserted at a fresh round tag and chased semi-naively with the
    store-chase's standard pivot plans; retractions walk the persisted
    ``repro_supports`` edges to over-delete the cone, then re-derive
    survivors with one full-width round before going semi-naive.  Same
    digest as clearing the store and re-chasing the updated base.

    Implemented in :mod:`repro.storage.chasestore` (the storage layer
    owns the SQL); this is the stable import point next to
    :func:`incremental_update`.
    """
    from .storage.chasestore import update_store_chase as _impl

    return _impl(
        store, theory, add=add, retract=retract, budget=budget, cancel=cancel
    )
