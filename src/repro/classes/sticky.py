"""Stickiness (Calì–Gottlob–Pieris) — the marking procedure.

Sticky theories are one of the decidable BDD classes the paper catalogues
(Section 1) and the source of its first surprise: they are BDD but not
*local*, only *bd-local* (Section 9, Example 39).

The syntactic test: mark body-variable occurrences in two phases.

1. **Seed** — in every rule, every occurrence of a body variable that does
   not appear in the head is marked.
2. **Propagate** — whenever a variable occurs in the head of a rule at a
   (predicate, position) that carries a marked occurrence in *some* rule
   body, all occurrences of that variable in the rule's body get marked.

The theory is sticky iff, at the fixpoint, no rule has a marked variable
occurring more than once in its body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..logic.signature import Predicate
from ..logic.terms import Variable
from ..logic.tgd import TGD, Theory

_Position = tuple[Predicate, int]
_Occurrence = tuple[int, int, int]  # (rule index, body atom index, argument index)


@dataclass
class StickinessReport:
    """The marking fixpoint plus the verdict."""

    sticky: bool
    marked_occurrences: set[_Occurrence] = field(default_factory=set)
    marked_positions: set[_Position] = field(default_factory=set)
    offending_rules: list[int] = field(default_factory=list)


def _body_occurrences(rule: TGD, rule_index: int, variable: Variable):
    for atom_index, item in enumerate(rule.body):
        for arg_index, term in enumerate(item.args):
            if term == variable:
                yield (rule_index, atom_index, arg_index)


def stickiness(theory: Theory) -> StickinessReport:
    """Run the marking procedure and decide stickiness."""
    rules = list(theory)
    marked: set[_Occurrence] = set()

    # Seed: body variables missing from the head.
    for rule_index, rule in enumerate(rules):
        head_vars = rule.head_variables()
        for variable in rule.body_variables():
            if variable not in head_vars:
                marked.update(_body_occurrences(rule, rule_index, variable))

    def marked_positions() -> set[_Position]:
        positions: set[_Position] = set()
        for rule_index, atom_index, arg_index in marked:
            predicate = rules[rule_index].body[atom_index].predicate
            positions.add((predicate, arg_index))
        return positions

    # Propagate to fixpoint.
    changed = True
    while changed:
        changed = False
        positions = marked_positions()
        for rule_index, rule in enumerate(rules):
            for item in rule.head:
                for arg_index, term in enumerate(item.args):
                    if not isinstance(term, Variable):
                        continue
                    if (item.predicate, arg_index) not in positions:
                        continue
                    new = set(_body_occurrences(rule, rule_index, term))
                    if not new <= marked:
                        marked.update(new)
                        changed = True

    # Verdict: a marked variable must not occur twice in a body.
    offending: list[int] = []
    for rule_index, rule in enumerate(rules):
        per_variable: dict[Variable, int] = {}
        for atom_index, item in enumerate(rule.body):
            for arg_index, term in enumerate(item.args):
                if (rule_index, atom_index, arg_index) in marked and isinstance(
                    term, Variable
                ):
                    per_variable[term] = per_variable.get(term, 0) + 1
        if any(count > 1 for count in per_variable.values()):
            offending.append(rule_index)

    return StickinessReport(
        sticky=not offending,
        marked_occurrences=marked,
        marked_positions=marked_positions(),
        offending_rules=offending,
    )


def is_sticky(theory: Theory) -> bool:
    """Convenience wrapper over :func:`stickiness`."""
    return stickiness(theory).sticky
