"""One-stop syntactic classification of a theory.

Collects every membership test the paper's Section 1 catalogue mentions
into a single report, so examples and benchmarks can print "where a theory
sits" in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.tgd import Theory
from .sticky import is_sticky


@dataclass(frozen=True)
class ClassificationReport:
    """Syntactic class memberships of a theory.

    Only *syntactic* classes appear here; semantic properties (BDD, Core
    Termination, locality, distancing) need the analyses in
    :mod:`repro.rewriting`, :mod:`repro.chase.termination` and
    :mod:`repro.frontier`.
    """

    name: str
    rule_count: int
    max_arity: int
    binary: bool
    connected: bool
    single_head: bool
    datalog: bool
    linear: bool
    guarded: bool
    frontier_guarded: bool
    frontier_one: bool
    sticky: bool
    has_detached_rules: bool

    def known_bdd_by_syntax(self) -> bool:
        """Membership in a syntactic class known to imply BDD.

        Linear and sticky theories are BDD outright; guardedness alone is
        *not* enough (only guarded+BDD is a decidable subclass — the paper
        cites [3,4]), and datalog needs boundedness, so neither counts.
        """
        return self.linear or self.sticky

    def lines(self) -> list[str]:
        flags = [
            ("datalog", self.datalog),
            ("linear", self.linear),
            ("guarded", self.guarded),
            ("frontier-guarded", self.frontier_guarded),
            ("frontier-one", self.frontier_one),
            ("sticky", self.sticky),
            ("binary signature", self.binary),
            ("connected", self.connected),
            ("single-head", self.single_head),
            ("has detached rules", self.has_detached_rules),
        ]
        header = f"{self.name or 'theory'}: {self.rule_count} rules, max arity {self.max_arity}"
        return [header] + [
            f"  {label:<20} {'yes' if value else 'no'}" for label, value in flags
        ]


def classify(theory: Theory) -> ClassificationReport:
    """Compute every syntactic membership test."""
    return ClassificationReport(
        name=theory.name,
        rule_count=len(theory),
        max_arity=theory.max_arity(),
        binary=theory.is_binary(),
        connected=theory.is_connected(),
        single_head=theory.is_single_head(),
        datalog=theory.is_datalog(),
        linear=theory.is_linear(),
        guarded=theory.is_guarded(),
        frontier_guarded=all(rule.is_frontier_guarded() for rule in theory),
        frontier_one=all(rule.is_frontier_one() for rule in theory),
        sticky=is_sticky(theory),
        has_detached_rules=any(rule.is_detached() for rule in theory),
    )
