"""Backward shyness (Thomazo) — probed through the rewriting engine.

Footnote 30 of the paper: a BDD theory is *backward shy* when, for every
query ``psi(y)``, every CQ in ``rew(psi(y))`` repeats only answer
variables.  Backward shy theories admit linear-size rewritings and are
therefore *distancing* (Observation 44) — they sit strictly inside the
frontier the paper explores.

The property quantifies over all queries, so we provide a budgeted probe:
check the defining condition on a caller-supplied query sample (by default
the atomic queries, which is where violations show first).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.atoms import Atom
from ..logic.query import ConjunctiveQuery
from ..logic.terms import Variable
from ..logic.tgd import Theory
from ..rewriting.engine import RewritingBudget, rewrite


def repeats_only_answer_variables(query: ConjunctiveQuery) -> bool:
    """Does every repeated variable of the CQ belong to the answer tuple?"""
    counts: dict[Variable, int] = {}
    for item in query.atoms:
        for variable in item.variables():
            counts[variable] = counts.get(variable, 0) + 1
    answers = set(query.answer_vars)
    return all(
        variable in answers
        for variable, count in counts.items()
        if count > 1
    )


def atomic_queries(theory: Theory) -> list[ConjunctiveQuery]:
    """One atomic query per predicate, all argument positions free."""
    queries = []
    for predicate in sorted(theory.predicates(), key=lambda p: p.name):
        variables = tuple(Variable(f"y{i}") for i in range(predicate.arity))
        queries.append(ConjunctiveQuery(variables, (Atom(predicate, variables),)))
    return queries


@dataclass
class BackwardShyProbe:
    """Outcome of a backward-shyness probe on a query sample."""

    backward_shy_on_sample: bool
    violations: list[tuple[ConjunctiveQuery, ConjunctiveQuery]]
    complete: bool


def probe_backward_shy(
    theory: Theory,
    queries: list[ConjunctiveQuery] | None = None,
    budget: RewritingBudget | None = None,
) -> BackwardShyProbe:
    """Check the backward-shy condition on a finite query sample.

    A "no" answer (non-empty ``violations``) is definitive; a "yes" only
    covers the sample — the property quantifies over all CQs.
    """
    sample = queries if queries is not None else atomic_queries(theory)
    violations: list[tuple[ConjunctiveQuery, ConjunctiveQuery]] = []
    complete = True
    for query in sample:
        result = rewrite(theory, query, budget)
        if not result.complete:
            complete = False
            continue
        for disjunct in result.ucq:
            if not repeats_only_answer_variables(disjunct):
                violations.append((query, disjunct))
    return BackwardShyProbe(
        backward_shy_on_sample=not violations,
        violations=violations,
        complete=complete,
    )
