"""Datalog theories and (empirical) boundedness.

Bounded datalog theories are the oldest inhabitants of the BDD class
(Section 1, citing Gaifman–Mairson–Sagiv–Vardi, who proved boundedness
undecidable).  Boundedness of a datalog theory means: a uniform number of
chase rounds saturates every instance — which for datalog coincides with
UBDD, since the chase invents no new elements.

We provide the syntactic test plus an empirical probe over instance
families, with the undecidability caveat attached to the probe's verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..chase.engine import ChaseBudget, chase
from ..logic.instance import Instance
from ..logic.tgd import Theory


def is_datalog(theory: Theory) -> bool:
    """No rule has existential (or universal head) variables."""
    return theory.is_datalog()


@dataclass
class BoundednessProbe:
    """Observed saturation depths of a datalog theory over a family.

    ``depths[i]`` is the number of rounds until fixpoint on the i-th
    instance.  ``bounded_on_sample`` just says the observed depths do not
    grow with the last (presumably largest) instances — evidence, not
    proof: boundedness is undecidable.
    """

    depths: list[int]

    @property
    def max_depth(self) -> int:
        return max(self.depths, default=0)

    @property
    def bounded_on_sample(self) -> bool:
        if len(self.depths) < 2:
            return True
        return self.depths[-1] <= max(self.depths[:-1])


def probe_boundedness(
    theory: Theory,
    instances: Iterable[Instance],
    max_rounds: int = 200,
    max_atoms: int = 500_000,
) -> BoundednessProbe:
    """Chase each instance to a fixpoint and record the depths.

    Raises when ``theory`` is not datalog (the notion is specific to it) or
    when some chase fails to terminate within budget (impossible for
    datalog unless budgets are too small: datalog chases always terminate).
    """
    if not is_datalog(theory):
        raise ValueError("boundedness probing is defined for datalog theories")
    depths: list[int] = []
    for instance in instances:
        result = chase(theory, instance, budget=ChaseBudget(max_rounds=max_rounds, max_atoms=max_atoms))
        if not result.terminated:
            raise RuntimeError("datalog chase exceeded budget; raise max_rounds/max_atoms")
        depths.append(result.rounds_run)
    return BoundednessProbe(depths=depths)
