"""Syntactic theory classes from the paper's Section-1 catalogue."""

from .backward_shy import (
    BackwardShyProbe,
    atomic_queries,
    probe_backward_shy,
    repeats_only_answer_variables,
)
from .datalog import BoundednessProbe, is_datalog, probe_boundedness
from .recognizers import ClassificationReport, classify
from .sticky import StickinessReport, is_sticky, stickiness

__all__ = [
    "BackwardShyProbe",
    "BoundednessProbe",
    "ClassificationReport",
    "StickinessReport",
    "atomic_queries",
    "classify",
    "is_datalog",
    "is_sticky",
    "probe_backward_shy",
    "probe_boundedness",
    "repeats_only_answer_variables",
    "stickiness",
]
